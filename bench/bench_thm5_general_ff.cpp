// E5 — Theorem 5: First Fit's general competitive ratio is at most 2*mu+13.
//
// Sweeps mu over mixed-size workloads (the general case: no size
// restriction) including the Theorem 1 construction, which is the known
// worst case driving the measured ratio toward mu.
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double mu;
  std::uint64_t seed;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E5", "First Fit, general case",
                "Theorem 5: FF_total <= (2*mu + 13) * OPT_total");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<double> mus{1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  const std::vector<std::uint64_t> seeds{3, 6, 9, 12, 15, 18, 21, 24};

  std::vector<Cell> cells;
  for (const double mu : mus) {
    for (const std::uint64_t seed : seeds) cells.push_back({mu, seed});
  }

  const auto ratios = parallel_map(cells, [&](const Cell& cell) {
    RandomInstanceConfig config;
    config.item_count = 900;
    config.arrival.rate = 10.0;
    config.duration.max_length = cell.mu;
    config.size.min_fraction = 0.02;
    config.size.max_fraction = 1.0;  // fully general sizes
    const Instance instance = generate_random_instance(config, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 20'000;
    const InstanceEvaluation evaluation =
        evaluate_algorithms(instance, {"first-fit"}, model, options);
    return evaluation.algorithms[0].ratio.upper;
  });

  Table table({"mu", "random worst FF/OPT", "random mean", "adversarial FF/OPT",
               "Thm 5 bound 2mu+13"});
  std::size_t index = 0;
  for (const double mu : mus) {
    std::vector<double> cell_ratios;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      cell_ratios.push_back(ratios[index++]);
    }
    const SummaryStats stats = summarize(cell_ratios);
    // The Theorem 1 construction instantiated at this mu: the known
    // adversarial floor, approaching mu itself.
    const auto built = build_anyfit_adversary({.k = 64, .mu = mu});
    const SimulationResult ff = simulate(built.instance, "first-fit", model);
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    const double adversarial = ff.total_cost / opt.upper_cost;
    table.add_row({Table::num(mu, 0), Table::num(stats.max, 3),
                   Table::num(stats.mean, 3), Table::num(adversarial, 3),
                   Table::num(2.0 * mu + 13.0, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every measured ratio <= 2*mu+13; the\n"
               "adversarial column grows ~linearly in mu (the Theorem 1 floor)\n"
               "while random workloads stay near 1 — the bound is worst-case.\n";
  return 0;
}
