// E4 — Theorem 4: First Fit on small items (s(r) < W/k) has ratio at most
// k/(k-1)*mu + 6k/(k-1) + 1.
//
// Sweeps (k, mu) over random small-item workloads; also reports adversarial
// churny variants that stress the bound harder than uniform traffic.
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double k;
  double mu;
  bool churny;
  std::uint64_t seed;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E4", "First Fit on small items",
                "Theorem 4: FF/OPT <= k/(k-1)*mu + 6k/(k-1) + 1 when s < W/k");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44, 55, 66};
  const std::vector<double> ks{2.0, 4.0, 8.0, 16.0};
  const std::vector<double> mus{1.0, 2.0, 4.0, 8.0};

  std::vector<Cell> cells;
  for (const double k : ks) {
    for (const double mu : mus) {
      for (const bool churny : {false, true}) {
        for (const std::uint64_t seed : seeds) cells.push_back({k, mu, churny, seed});
      }
    }
  }

  const auto ratios = parallel_map(cells, [&](const Cell& cell) {
    RandomInstanceConfig config;
    config.item_count = 900;
    config.arrival.rate = cell.churny ? 40.0 : 8.0;
    config.duration.max_length = cell.mu;
    config.size.min_fraction = 0.2 / cell.k;
    config.size.max_fraction = 0.999 / cell.k;  // strictly below W/k
    if (cell.churny) {
      config.arrival.kind = ArrivalModel::Kind::kBursts;
      config.arrival.burst_size = 24;
      config.arrival.burst_gap = cell.mu / 2.0;
    }
    const Instance instance = generate_random_instance(config, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 20'000;
    const InstanceEvaluation evaluation =
        evaluate_algorithms(instance, {"first-fit"}, model, options);
    return evaluation.algorithms[0].ratio.upper;
  });

  Table table({"k (sizes < W/k)", "mu", "workload", "worst FF/OPT",
               "mean FF/OPT", "Thm 4 bound"});
  std::size_t index = 0;
  for (const double k : ks) {
    for (const double mu : mus) {
      for (const bool churny : {false, true}) {
        std::vector<double> cell_ratios;
        for (std::size_t s = 0; s < seeds.size(); ++s) {
          cell_ratios.push_back(ratios[index++]);
        }
        const SummaryStats stats = summarize(cell_ratios);
        const double bound = k / (k - 1.0) * mu + 6.0 * k / (k - 1.0) + 1.0;
        table.add_row({Table::num(k, 0), Table::num(mu, 0),
                       churny ? "bursty" : "poisson", Table::num(stats.max, 3),
                       Table::num(stats.mean, 3), Table::num(bound, 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured ratios sit well below the Theorem 4\n"
               "bound; the bound's mu-slope k/(k-1) approaches 1 as k grows\n"
               "(smaller items -> tighter packing -> less mu sensitivity).\n";
  return 0;
}
