// E11 — throughput microbenchmarks (google-benchmark).
//
// Measures the engineering half of the library: packer event throughput
// (items/sec) per algorithm and scale, the bin-count oracle, and the
// OPT_total estimator.
#include <benchmark/benchmark.h>

#include <cmath>

#include "opt/bin_count.hpp"
#include "opt/opt_total.hpp"
#include "opt/opt_total_reference.hpp"
#include "opt/rle.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace dbp;

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

Instance make_instance(std::size_t items, std::uint64_t seed = 99) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.5;
  return generate_random_instance(config, seed);
}

// Dyadic sizes duplicate heavily, so RLE snapshots stay tiny and snapshot
// dedup fires; this is the workload the fast path is built for.
Instance make_dyadic_instance(std::size_t items, std::uint64_t seed = 99) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  config.size.kind = SizeModel::Kind::kDyadic;
  config.size.min_exponent = 1;
  config.size.max_exponent = 6;
  return generate_random_instance(config, seed);
}

void BM_Packer(benchmark::State& state, const std::string& algorithm) {
  const auto items = static_cast<std::size_t>(state.range(0));
  const Instance instance = make_instance(items);
  PackerOptions options;
  options.known_mu = 8.0;
  for (auto _ : state) {
    const SimulationResult result =
        simulate(instance, algorithm, unit_model(), options);
    benchmark::DoNotOptimize(result.total_cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(items));
}

void RegisterPackerBenchmarks() {
  for (const std::string& name : all_algorithm_names()) {
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_Packer/" + name).c_str(),
        [name](benchmark::State& state) { BM_Packer(state, name); });
    bench->Arg(1'000)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond)->MinTime(0.05);
  }
}

void BM_BinCountOracle(benchmark::State& state) {
  const auto active = static_cast<std::size_t>(state.range(0));
  std::vector<double> sizes;
  Rng rng(5);
  for (std::size_t i = 0; i < active; ++i) {
    sizes.push_back(rng.uniform(0.02, 0.5));
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const CostModel model = unit_model();
  BinCountOptions options;
  options.exact.node_budget = 20'000;
  for (auto _ : state) {
    const BinCountBounds bounds = optimal_bin_count(sizes, model, options);
    benchmark::DoNotOptimize(bounds.lower);
  }
}
BENCHMARK(BM_BinCountOracle)->Arg(32)->Arg(256)->Arg(2048)->MinTime(0.05);

// Same bin-count query posed through the RLE interface on a duplicated-size
// multiset: `active` items but only 6 distinct sizes. Compare against
// BM_BinCountOracle to see what multiplicity compression buys.
void BM_BinCountOracleRle(benchmark::State& state) {
  const auto active = static_cast<std::size_t>(state.range(0));
  std::vector<double> sizes;
  Rng rng(5);
  for (std::size_t i = 0; i < active; ++i) {
    const int exponent = static_cast<int>(rng.uniform_int(1, 6));
    sizes.push_back(std::ldexp(1.0, -exponent));
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const std::vector<SizeRun> runs = rle_from_sorted(sizes);
  const CostModel model = unit_model();
  BinCountOptions options;
  options.exact.node_budget = 20'000;
  for (auto _ : state) {
    const BinCountBounds bounds = optimal_bin_count_rle(runs, model, options);
    benchmark::DoNotOptimize(bounds.lower);
  }
}
BENCHMARK(BM_BinCountOracleRle)->Arg(32)->Arg(256)->Arg(2048)->MinTime(0.05);

void RunOptTotal(benchmark::State& state, const Instance& instance,
                 exec::ExecutionPolicy policy) {
  const CostModel model = unit_model();
  OptTotalOptions options;
  options.bin_count.exact.node_budget = 20'000;
  options.policy = policy;
  for (auto _ : state) {
    const OptTotalResult result = estimate_opt_total(instance, model, options);
    benchmark::DoNotOptimize(result.lower_cost);
  }
}

void BM_OptTotal(benchmark::State& state) {
  RunOptTotal(state, make_instance(static_cast<std::size_t>(state.range(0))),
              exec::ExecutionPolicy::kAdaptive);
}
BENCHMARK(BM_OptTotal)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_OptTotalSequential(benchmark::State& state) {
  RunOptTotal(state, make_instance(static_cast<std::size_t>(state.range(0))),
              exec::ExecutionPolicy::kSequential);
}
BENCHMARK(BM_OptTotalSequential)->Arg(5'000)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_OptTotalDyadic(benchmark::State& state) {
  RunOptTotal(state,
              make_dyadic_instance(static_cast<std::size_t>(state.range(0))),
              exec::ExecutionPolicy::kAdaptive);
}
BENCHMARK(BM_OptTotalDyadic)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond)->MinTime(0.05);

// Pre-fast-path estimator retained as the differential-test specification;
// benchmarked so the speedup of the RLE + dedup + parallel pipeline is a
// number in the report, not a claim.
void BM_OptTotalReference(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)));
  const CostModel model = unit_model();
  OptTotalOptions options;
  options.bin_count.exact.node_budget = 20'000;
  for (auto _ : state) {
    const OptTotalResult result =
        estimate_opt_total_reference(instance, model, options);
    benchmark::DoNotOptimize(result.lower_cost);
  }
}
BENCHMARK(BM_OptTotalReference)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_OptTotalReferenceDyadic(benchmark::State& state) {
  const Instance instance =
      make_dyadic_instance(static_cast<std::size_t>(state.range(0)));
  const CostModel model = unit_model();
  OptTotalOptions options;
  options.bin_count.exact.node_budget = 20'000;
  for (auto _ : state) {
    const OptTotalResult result =
        estimate_opt_total_reference(instance, model, options);
    benchmark::DoNotOptimize(result.lower_cost);
  }
}
BENCHMARK(BM_OptTotalReferenceDyadic)->Arg(1'000)->Arg(5'000)->Unit(benchmark::kMillisecond)->MinTime(0.05);

void BM_EventSequence(benchmark::State& state) {
  const Instance instance =
      make_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_event_sequence(instance).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EventSequence)->Arg(10'000)->Arg(100'000)->MinTime(0.05);

}  // namespace

int main(int argc, char** argv) {
  RegisterPackerBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
