// E16 — price of commitment vs price of the future (extension).
//
// On small instances where the exact no-migration optimum is computable,
// split every online algorithm's gap to the paper's OPT_total (repacking
// allowed) into:
//   commitment gap:  NoMigrationOPT / OPT_total       (inherent to the model)
//   information gap: A_total / NoMigrationOPT         (what being online costs)
// The paper's competitive ratios bundle both; this ablation separates them.
#include <iostream>

#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "opt/no_migration.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double mu;
  double min_size;
  double max_size;
  std::uint64_t seed;
};

struct CellResult {
  bool proven;
  double commitment;   // NoMigrationOPT / OPT upper (conservative low side)
  double info_ff;      // FF / NoMigrationOPT
  double info_bf;      // BF / NoMigrationOPT
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E16", "Price of commitment vs price of the future",
                "extension: exact no-migration optimum on small instances");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15, 16};

  struct Regime {
    const char* label;
    double mu;
    double min_size;
    double max_size;
  };
  const std::vector<Regime> regimes{
      {"large items, mu=4", 4.0, 0.4, 0.9},
      {"large items, mu=16", 16.0, 0.4, 0.9},
      {"mixed items, mu=4", 4.0, 0.15, 0.7},
      {"mixed items, mu=16", 16.0, 0.15, 0.7},
  };

  Table table({"regime", "proven", "commitment gap (mean/max)",
               "online FF gap (mean/max)", "online BF gap (mean/max)"});
  for (const Regime& regime : regimes) {
    std::vector<Cell> cells;
    for (const std::uint64_t seed : seeds) {
      cells.push_back({regime.mu, regime.min_size, regime.max_size, seed});
    }
    const auto results = parallel_map(cells, [&](const Cell& cell) {
      RandomInstanceConfig config;
      config.item_count = 12;
      config.arrival.rate = 1.5;
      config.duration.max_length = cell.mu;
      config.size.min_fraction = cell.min_size;
      config.size.max_fraction = cell.max_size;
      const Instance instance = generate_random_instance(config, cell.seed);
      const OptTotalResult repack = estimate_opt_total(instance, model);
      const NoMigrationResult committed = exact_no_migration_cost(instance, model);
      const SimulationResult ff = simulate(instance, "first-fit", model);
      const SimulationResult bf = simulate(instance, "best-fit", model);
      CellResult r;
      r.proven = committed.proven;
      r.commitment = committed.upper / repack.upper_cost;
      r.info_ff = ff.total_cost / committed.upper;
      r.info_bf = bf.total_cost / committed.upper;
      return r;
    });
    std::vector<double> commitment, info_ff, info_bf;
    std::size_t proven = 0;
    for (const CellResult& r : results) {
      proven += r.proven ? 1 : 0;
      commitment.push_back(r.commitment);
      info_ff.push_back(r.info_ff);
      info_bf.push_back(r.info_bf);
    }
    const auto fmt = [](const SummaryStats& stats) {
      return Table::num(stats.mean, 3) + " / " + Table::num(stats.max, 3);
    };
    table.add_row({regime.label,
                   strfmt("%zu/%zu", proven, results.size()),
                   fmt(summarize(commitment)), fmt(summarize(info_ff)),
                   fmt(summarize(info_bf))});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the commitment gap (no-migration optimum vs\n"
               "repacking optimum) stays close to 1 — almost all of the online\n"
               "algorithms' gap is the *information* gap, justifying the\n"
               "paper's choice to compare against the stronger repacking OPT.\n";
  return 0;
}
