#include "analysis/ratio.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(RatioTest, EvaluatesMultipleAlgorithms) {
  RandomInstanceConfig config;
  config.item_count = 300;
  const Instance instance = generate_random_instance(config, 5);
  const InstanceEvaluation evaluation = evaluate_algorithms(
      instance, {"first-fit", "best-fit", "modified-first-fit"}, unit_model());
  ASSERT_EQ(evaluation.algorithms.size(), 3u);
  for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
    EXPECT_GT(eval.total_cost, 0.0);
    EXPECT_GE(eval.ratio.upper, eval.ratio.lower);
    EXPECT_GE(eval.ratio.lower, 1.0 - 1e-9);  // no algorithm beats OPT's ub
  }
}

TEST(RatioTest, RowLookup) {
  RandomInstanceConfig config;
  config.item_count = 100;
  const Instance instance = generate_random_instance(config, 6);
  const InstanceEvaluation evaluation =
      evaluate_algorithms(instance, {"first-fit", "best-fit"}, unit_model());
  EXPECT_EQ(evaluation.row("best-fit").algorithm, "best-fit");
  EXPECT_THROW((void)evaluation.row("worst-fit"), PreconditionError);
}

TEST(RatioTest, KnownMuDerivedFromInstance) {
  RandomInstanceConfig config;
  config.item_count = 100;
  config.duration.min_length = 1.0;
  config.duration.max_length = 3.0;
  const Instance instance = generate_random_instance(config, 7);
  const InstanceEvaluation evaluation = evaluate_algorithms(
      instance, {"modified-first-fit-known-mu"}, unit_model());
  // Display name embeds the realized mu = 3.
  EXPECT_NE(evaluation.algorithms[0].display_name.find("mu=3"),
            std::string::npos)
      << evaluation.algorithms[0].display_name;
}

TEST(RatioTest, CostsNeverBelowOptLower) {
  const auto built = build_anyfit_adversary({.k = 4, .mu = 4.0});
  const InstanceEvaluation evaluation = evaluate_algorithms(
      built.instance, {"first-fit", "best-fit", "next-fit"}, unit_model());
  for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
    EXPECT_GE(eval.total_cost, evaluation.opt.lower_cost - 1e-9);
  }
}

TEST(RatioTest, MetricsArePopulated) {
  RandomInstanceConfig config;
  config.item_count = 50;
  const Instance instance = generate_random_instance(config, 8);
  const InstanceEvaluation evaluation =
      evaluate_algorithms(instance, {"first-fit"}, unit_model());
  EXPECT_EQ(evaluation.metrics.item_count, 50u);
  EXPECT_GT(evaluation.opt.lower_cost, 0.0);
}

TEST(RatioTest, EmptyInputsRejected) {
  Instance instance;
  EXPECT_THROW((void)evaluate_algorithms(instance, {"first-fit"}, unit_model()),
               PreconditionError);
  instance.add(0.0, 1.0, 0.5);
  EXPECT_THROW((void)evaluate_algorithms(instance, {}, unit_model()),
               PreconditionError);
}

}  // namespace
}  // namespace dbp
