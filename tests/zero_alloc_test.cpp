// Zero-steady-state-allocation regression tests (hot-path memory
// architecture): counting global operator new/delete overrides pin that
//
//   1. the packer event loop — replay_events() after reserve_hint() — runs
//      without touching the heap for every devirtualized strategy, and
//   2. the OPT bin-count kernel with a warm BinCountScratch re-evaluates
//      snapshots allocation-free (the arena/tree/residual buffers are
//      reused, not reallocated).
//
// The overrides live at global scope in this translation unit, so they
// replace the program-wide allocation functions for this test binary only.
// Counters are always-on atomics; tests measure deltas around the region
// under test, so allocations made by gtest or the fixtures outside that
// region never pollute a measurement.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "algo/packer.hpp"
#include "core/types.hpp"
#include "opt/bin_count.hpp"
#include "opt/rle.hpp"
#include "opt/scratch.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_allocate(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

void* counted_allocate_aligned(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* ptr = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded)) {
    return ptr;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_allocate(size); }
void* operator new[](std::size_t size) { return counted_allocate(size); }
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_allocate_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_allocate_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

Instance churn_instance(std::uint64_t seed, std::size_t items) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 4.0;  // dense arrivals -> many simultaneously open bins
  return generate_random_instance(config, seed);
}

// ---- packer event loop ---------------------------------------------------

/// Every strategy whose replay loop is devirtualized (StaticAnyFitPacker)
/// plus the parameterized MFF/harmonic family. reserve_hint() pre-sizes the
/// BinManager and the strategy indexes; after that the whole replay must be
/// allocation-free.
class ZeroAllocReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroAllocReplayTest, ReplayAfterReserveHintDoesNotAllocate) {
  const std::string name = GetParam();
  const Instance instance = churn_instance(/*seed=*/1234, /*items=*/2000);
  const std::vector<Event> events = build_event_sequence(instance);

  std::unique_ptr<Packer> packer = make_packer(name, unit_model());
  packer->reserve_hint(instance.size());

  const std::uint64_t before = allocation_count();
  replay_events(instance, events, *packer);
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << name << ": the steady-state event loop allocated "
      << (after - before) << " time(s); reserve_hint() should have pre-sized "
      << "every growth path (strategy indexes, BinManager, usage records)";
  // Sanity: the run actually did the work.
  EXPECT_GT(packer->bins().total_bins_opened(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ZeroAllocReplayTest,
    ::testing::Values("first-fit", "best-fit", "worst-fit", "next-fit",
                      "last-fit", "move-to-front-fit", "random-fit",
                      "modified-first-fit", "harmonic-first-fit"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string id = info.param;
      for (char& c : id) {
        if (c == '-') c = '_';
      }
      return id;
    });

// ---- OPT bin-count scratch ----------------------------------------------

/// Descending RLE snapshot drawn from a random instance: realistic spread
/// of distinct sizes, large counts.
std::vector<SizeRun> sample_runs(std::uint64_t seed, std::size_t items) {
  const Instance instance = churn_instance(seed, items);
  std::vector<double> sizes;
  sizes.reserve(instance.size());
  for (const Item& item : instance.items()) sizes.push_back(item.size);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return rle_from_sorted(sizes);
}

TEST(ZeroAllocScratchTest, WarmBinCountScratchDoesNotAllocate) {
  const CostModel model = unit_model();
  BinCountOptions options;
  BinCountScratch scratch;

  // Several snapshots of different shapes, evaluated round-robin the way
  // the OPT_total evaluate phase reuses one scratch per worker across many
  // pending snapshots.
  std::vector<std::vector<SizeRun>> snapshots;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    snapshots.push_back(sample_runs(seed, 400 * static_cast<std::size_t>(seed)));
  }

  // Warm-up pass: the arena grows its chunks, the FFD tree and BFD residual
  // index reach their high-water capacity.
  std::vector<BinCountBounds> expected;
  for (const auto& runs : snapshots) {
    expected.push_back(optimal_bin_count_rle(runs, model, options, scratch));
  }
  const std::size_t warm_chunks = scratch.arena.chunk_count();

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      const BinCountBounds bounds =
          optimal_bin_count_rle(snapshots[i], model, options, scratch);
      ASSERT_EQ(bounds.lower, expected[i].lower);
      ASSERT_EQ(bounds.upper, expected[i].upper);
    }
  }
  const std::uint64_t after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "warm BinCountScratch allocated " << (after - before)
      << " time(s) across re-evaluations; arena/tree/residual buffers "
      << "should be reused";
  EXPECT_EQ(scratch.arena.chunk_count(), warm_chunks)
      << "the arena grew after warm-up; reset() should retain capacity";
}

TEST(ZeroAllocScratchTest, ScratchMatchesAllocatingPathBitIdentically) {
  const CostModel model = unit_model();
  BinCountOptions options;
  BinCountScratch scratch;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const std::vector<SizeRun> runs = sample_runs(seed, 300);
    const BinCountBounds plain = optimal_bin_count_rle(runs, model, options);
    const BinCountBounds reused =
        optimal_bin_count_rle(runs, model, options, scratch);
    EXPECT_EQ(plain.lower, reused.lower) << "seed " << seed;
    EXPECT_EQ(plain.upper, reused.upper) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dbp
