#include "opt/no_migration.hpp"

#include <gtest/gtest.h>

#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(NoMigrationTest, EmptyAndSingle) {
  const NoMigrationResult empty =
      exact_no_migration_cost(Instance{}, unit_model());
  EXPECT_TRUE(empty.proven);
  EXPECT_DOUBLE_EQ(empty.upper, 0.0);

  Instance one;
  one.add(1.0, 5.0, 0.5);
  const NoMigrationResult single = exact_no_migration_cost(one, unit_model());
  EXPECT_TRUE(single.proven);
  EXPECT_DOUBLE_EQ(single.upper, 4.0);
}

TEST(NoMigrationTest, HandComputedTwoBins) {
  // Two 0.9-items overlapping on [2, 4): no sharing possible.
  Instance instance;
  instance.add(0.0, 4.0, 0.9);
  instance.add(2.0, 6.0, 0.9);
  const NoMigrationResult result = exact_no_migration_cost(instance, unit_model());
  EXPECT_TRUE(result.proven);
  EXPECT_DOUBLE_EQ(result.upper, 8.0);
}

TEST(NoMigrationTest, NestingIsFree) {
  // A short item nests inside a long item's bin: one bin, cost = long item.
  Instance instance;
  instance.add(0.0, 10.0, 0.5);
  instance.add(3.0, 5.0, 0.5);
  const NoMigrationResult result = exact_no_migration_cost(instance, unit_model());
  EXPECT_TRUE(result.proven);
  EXPECT_DOUBLE_EQ(result.upper, 10.0);
}

TEST(NoMigrationTest, CommitmentCanCostMoreThanRepacking) {
  // The classic gap: items A [0,2), B [1,3) of size 0.6 and C [2,4) of
  // size 0.6. Repacking: 2 bins during [1,2) only -> OPT_total = 4 + ...
  // Without migration, B blocks either A's or C's bin.
  Instance instance;
  instance.add(0.0, 2.0, 0.6);
  instance.add(1.0, 3.0, 0.6);
  instance.add(2.0, 4.0, 0.6);
  const OptTotalResult repack = estimate_opt_total(instance, unit_model());
  const NoMigrationResult committed =
      exact_no_migration_cost(instance, unit_model());
  EXPECT_TRUE(committed.proven);
  // Repack optimum: n(t) = 1 on [0,1), 2 on [1,3), 1 on [3,4) -> 6.
  EXPECT_DOUBLE_EQ(repack.lower_cost, 6.0);
  // Without migration B needs its own bin (overlaps both A and C, which
  // must be in distinct time-sharings anyway): best is {A, C} + {B} -> 4+2=6
  // ... sharing works here; assert the sandwich rather than a fixed value.
  EXPECT_GE(committed.upper, repack.lower_cost - 1e-9);
}

TEST(NoMigrationTest, SandwichOnRandomTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomInstanceConfig config;
    config.item_count = 9;
    config.arrival.rate = 2.0;
    config.duration.max_length = 4.0;
    config.size.min_fraction = 0.2;
    config.size.max_fraction = 0.8;
    const Instance instance = generate_random_instance(config, seed);
    const OptTotalResult repack = estimate_opt_total(instance, unit_model());
    const NoMigrationResult committed =
        exact_no_migration_cost(instance, unit_model());
    ASSERT_TRUE(committed.proven) << seed;
    // OPT_total <= NoMigrationOPT <= every online algorithm.
    EXPECT_GE(committed.upper, repack.lower_cost - 1e-9) << seed;
    for (const std::string name : {"first-fit", "best-fit", "worst-fit"}) {
      const SimulationResult online = simulate(instance, name, unit_model());
      EXPECT_LE(committed.upper, online.total_cost + 1e-9) << name << seed;
    }
  }
}

TEST(NoMigrationTest, MatchesRepackingOnTheoremOneConstruction) {
  // Offline, the Theorem 1 instance needs no migration: survivors go into
  // one bin from the start. NoMigrationOPT == OPT_total.
  const auto built = build_anyfit_adversary({.k = 3, .mu = 4.0});
  const OptTotalResult repack = estimate_opt_total(built.instance, unit_model());
  const NoMigrationResult committed =
      exact_no_migration_cost(built.instance, unit_model());
  ASSERT_TRUE(committed.proven);
  EXPECT_NEAR(committed.upper, repack.upper_cost, 1e-9);
  // And strictly better than what any Any Fit algorithm achieves online.
  const SimulationResult ff = simulate(built.instance, "first-fit", unit_model());
  EXPECT_LT(committed.upper, ff.total_cost);
}

TEST(NoMigrationTest, BudgetAbortKeepsSoundBounds) {
  RandomInstanceConfig config;
  config.item_count = 24;
  config.arrival.rate = 6.0;
  config.size.min_fraction = 0.15;
  config.size.max_fraction = 0.4;
  const Instance instance = generate_random_instance(config, 99);
  NoMigrationOptions options;
  options.node_budget = 50;
  const NoMigrationResult result =
      exact_no_migration_cost(instance, unit_model(), options);
  EXPECT_FALSE(result.proven);
  EXPECT_LE(result.lower, result.upper + 1e-12);
  const SimulationResult ff = simulate(instance, "first-fit", unit_model());
  EXPECT_LE(result.upper, ff.total_cost + 1e-9);  // never worse than FF
}

TEST(NoMigrationTest, RejectsHugeInstances) {
  RandomInstanceConfig config;
  config.item_count = 100;
  const Instance instance = generate_random_instance(config, 1);
  EXPECT_THROW((void)exact_no_migration_cost(instance, unit_model()),
               PreconditionError);
}

TEST(NoMigrationTest, CostRateScales) {
  Instance instance;
  instance.add(0.0, 2.0, 0.5);
  const CostModel model{1.0, 3.0, 1e-9};
  const NoMigrationResult result = exact_no_migration_cost(instance, model);
  EXPECT_DOUBLE_EQ(result.upper, 6.0);
}

}  // namespace
}  // namespace dbp
