// Soak test: a large end-to-end run through every subsystem at once —
// 100k-item trace, every algorithm, OPT bounds, occupancy, decomposition —
// asserting cross-subsystem invariants at scale rather than micro
// behaviours.
#include <gtest/gtest.h>

#include "analysis/ff_decomposition.hpp"
#include "analysis/occupancy.hpp"
#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/cloud_gaming.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(SoakTest, HundredThousandItemsAllAlgorithms) {
  RandomInstanceConfig config;
  config.item_count = 100'000;
  config.arrival.rate = 50.0;
  config.duration.max_length = 8.0;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.7;
  const Instance instance = generate_random_instance(config, 2024);
  const CostBounds closed = compute_cost_bounds(instance, unit_model());

  PackerOptions options;
  options.known_mu = 8.0;
  double ff_cost = 0.0;
  for (const std::string& name : all_algorithm_names()) {
    const SimulationResult result = simulate(instance, name, unit_model(), options);
    EXPECT_GE(result.total_cost, closed.demand_lower * (1.0 - 1e-9)) << name;
    EXPECT_GE(result.total_cost, closed.span_lower * (1.0 - 1e-9)) << name;
    EXPECT_LE(result.total_cost, closed.one_per_item_upper * (1.0 + 1e-9)) << name;
    EXPECT_NEAR(result.total_cost, result.total_cost_from_bins,
                1e-9 * result.total_cost)
        << name;
    if (name == "first-fit") ff_cost = result.total_cost;
  }
  ASSERT_GT(ff_cost, 0.0);
}

TEST(SoakTest, WeekLongCloudGamingTraceEndToEnd) {
  CloudGamingConfig config;
  config.horizon_hours = 7.0 * 24.0;
  config.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 7);
  ASSERT_GT(trace.instance.size(), 3'000u);

  const SimulationResult ff = simulate(trace.instance, "first-fit", unit_model());

  // OPT bounds with the exact solver disabled for speed; still certified.
  OptTotalOptions opt_options;
  opt_options.bin_count.use_exact_solver = false;
  const OptTotalResult opt =
      estimate_opt_total(trace.instance, unit_model(), opt_options);
  EXPECT_GE(ff.total_cost, opt.lower_cost * (1.0 - 1e-9));
  const InstanceMetrics metrics = compute_metrics(trace.instance);
  EXPECT_LE(ff.total_cost,
            (2.0 * metrics.mu + 13.0) * opt.upper_cost * (1.0 + 1e-9));

  // Decomposition invariants at scale.
  const FFDecomposition d = decompose_first_fit(trace.instance, ff);
  const DecompositionReport report =
      verify_ff_decomposition(trace.instance, ff, d, unit_model());
  EXPECT_TRUE(report.all_ok()) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());

  // Occupancy sanity.
  const OccupancyReport occupancy =
      compute_occupancy(trace.instance, ff, unit_model());
  EXPECT_GT(occupancy.utilization, 0.3);
  EXPECT_LE(occupancy.utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace dbp
