// Metamorphic tests of the OPT_total estimator: structural relations that
// must hold between the optimum of an instance and the optima of its
// transformations, independent of any reference value.
#include <gtest/gtest.h>

#include "opt/opt_total.hpp"
#include "workload/random_instance.hpp"
#include "workload/transform.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

class OptMetamorphicTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Instance make(std::uint64_t salt) const {
    RandomInstanceConfig config;
    config.item_count = 200;
    config.arrival.rate = 5.0 + static_cast<double>(GetParam() % 4) * 3.0;
    config.duration.max_length = 2.0 + static_cast<double>(GetParam() % 3);
    return generate_random_instance(config, GetParam() * 1000 + salt);
  }
};

TEST_P(OptMetamorphicTest, CroppingNeverIncreasesOpt) {
  const Instance full = make(1);
  const TimeInterval period = full.packing_period();
  const TimeInterval window{period.begin + 0.25 * period.length(),
                            period.begin + 0.75 * period.length()};
  const Instance cropped = crop(full, window);
  if (cropped.empty()) GTEST_SKIP();
  const OptTotalResult whole = estimate_opt_total(full, unit_model());
  const OptTotalResult part = estimate_opt_total(cropped, unit_model());
  // Pointwise the cropped active set is a subset, so OPT can only shrink.
  EXPECT_LE(part.lower_cost, whole.upper_cost + 1e-9);
}

TEST_P(OptMetamorphicTest, OverlayDominatesEachPart) {
  const Instance a = make(1);
  const Instance b = make(2);
  const Instance merged = overlay(a, b);
  const OptTotalResult opt_a = estimate_opt_total(a, unit_model());
  const OptTotalResult opt_b = estimate_opt_total(b, unit_model());
  const OptTotalResult opt_m = estimate_opt_total(merged, unit_model());
  EXPECT_GE(opt_m.upper_cost, opt_a.lower_cost - 1e-9);
  EXPECT_GE(opt_m.upper_cost, opt_b.lower_cost - 1e-9);
  // Subadditivity: packing the parts separately is feasible for the union.
  EXPECT_LE(opt_m.lower_cost, opt_a.upper_cost + opt_b.upper_cost + 1e-9);
}

TEST_P(OptMetamorphicTest, ConcatenationIsAdditive) {
  const Instance a = make(1);
  const Instance b = make(2);
  const Instance joined = concatenate(a, b, 1.0);
  const OptTotalResult opt_a = estimate_opt_total(a, unit_model());
  const OptTotalResult opt_b = estimate_opt_total(b, unit_model());
  const OptTotalResult opt_j = estimate_opt_total(joined, unit_model());
  // Time-disjoint pieces: the optimum decomposes exactly (up to interval
  // widths of the certified bounds).
  EXPECT_LE(opt_j.lower_cost, opt_a.upper_cost + opt_b.upper_cost + 1e-6);
  EXPECT_GE(opt_j.upper_cost, opt_a.lower_cost + opt_b.lower_cost - 1e-6);
}

TEST_P(OptMetamorphicTest, TimeScalingIsLinear) {
  const Instance original = make(3);
  const Instance scaled = scale_time(original, 4.0, 11.0);
  const OptTotalResult base = estimate_opt_total(original, unit_model());
  const OptTotalResult stretched = estimate_opt_total(scaled, unit_model());
  EXPECT_NEAR(stretched.lower_cost, 4.0 * base.lower_cost,
              1e-6 * stretched.lower_cost + 1e-9);
  EXPECT_NEAR(stretched.upper_cost, 4.0 * base.upper_cost,
              1e-6 * stretched.upper_cost + 1e-9);
}

TEST_P(OptMetamorphicTest, ReversalPreservesOpt) {
  const Instance original = make(4);
  const Instance reversed = reverse_time(original);
  const OptTotalResult fwd = estimate_opt_total(original, unit_model());
  const OptTotalResult bwd = estimate_opt_total(reversed, unit_model());
  EXPECT_NEAR(fwd.lower_cost, bwd.lower_cost, 1e-6 * fwd.lower_cost + 1e-9);
  EXPECT_NEAR(fwd.upper_cost, bwd.upper_cost, 1e-6 * fwd.upper_cost + 1e-9);
}

TEST_P(OptMetamorphicTest, DuplicationAtMostDoubles) {
  const Instance original = make(5);
  const Instance doubled = overlay(original, original);
  const OptTotalResult base = estimate_opt_total(original, unit_model());
  const OptTotalResult twice = estimate_opt_total(doubled, unit_model());
  EXPECT_LE(twice.lower_cost, 2.0 * base.upper_cost + 1e-9);
  EXPECT_GE(twice.upper_cost, base.lower_cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptMetamorphicTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace dbp
