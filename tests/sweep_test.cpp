#include "analysis/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace dbp {
namespace {

TEST(SweepTest, MapsInOrder) {
  std::vector<int> jobs;
  for (int i = 0; i < 100; ++i) jobs.push_back(i);
  const auto results = parallel_map(jobs, [](int x) { return x * x; });
  ASSERT_EQ(results.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(SweepTest, EmptyJobList) {
  const std::vector<int> jobs;
  const auto results = parallel_map(jobs, [](int x) { return x; });
  EXPECT_TRUE(results.empty());
}

TEST(SweepTest, AllJobsRunExactlyOnce) {
  std::vector<int> jobs(500, 1);
  std::atomic<int> counter{0};
  (void)parallel_map(jobs, [&](int x) {
    counter.fetch_add(x);
    return 0;
  });
  EXPECT_EQ(counter.load(), 500);
}

TEST(SweepTest, ExceptionIsRethrown) {
  std::vector<int> jobs{1, 2, 3, 4, 5};
  EXPECT_THROW((void)parallel_map(jobs,
                                  [](int x) -> int {
                                    if (x == 3) throw std::runtime_error("boom");
                                    return x;
                                  }),
               std::runtime_error);
}

TEST(SweepTest, NonTrivialResultType) {
  std::vector<int> jobs{1, 2, 3};
  const auto results = parallel_map(jobs, [](int x) {
    return std::vector<int>(static_cast<std::size_t>(x), x);
  });
  EXPECT_EQ(results[2].size(), 3u);
}

TEST(SweepTest, WorkerCountPositive) {
  EXPECT_GE(parallel_worker_count(), 1);
}

}  // namespace
}  // namespace dbp
