#include "exec/parallel_map.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace dbp {
namespace {

TEST(SweepTest, MapsInOrder) {
  std::vector<int> jobs;
  for (int i = 0; i < 100; ++i) jobs.push_back(i);
  const auto results = parallel_map(jobs, [](int x) { return x * x; });
  ASSERT_EQ(results.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(SweepTest, EmptyJobList) {
  const std::vector<int> jobs;
  const auto results = parallel_map(jobs, [](int x) { return x; });
  EXPECT_TRUE(results.empty());
}

TEST(SweepTest, AllJobsRunExactlyOnce) {
  std::vector<int> jobs(500, 1);
  std::atomic<int> counter{0};
  (void)parallel_map(jobs, [&](int x) {
    counter.fetch_add(x);
    return 0;
  });
  EXPECT_EQ(counter.load(), 500);
}

TEST(SweepTest, ExceptionIsRethrown) {
  std::vector<int> jobs{1, 2, 3, 4, 5};
  EXPECT_THROW((void)parallel_map(jobs,
                                  [](int x) -> int {
                                    if (x == 3) throw std::runtime_error("boom");
                                    return x;
                                  }),
               std::runtime_error);
}

// The parallel_map contract: move-constructible is enough. No default
// constructor, so a regression to default-constructed result slots fails
// to compile.
struct MoveOnlyTagged {
  explicit MoveOnlyTagged(int v) : value(v) {}
  MoveOnlyTagged(const MoveOnlyTagged&) = delete;
  MoveOnlyTagged& operator=(const MoveOnlyTagged&) = delete;
  MoveOnlyTagged(MoveOnlyTagged&&) = default;
  MoveOnlyTagged& operator=(MoveOnlyTagged&&) = default;
  int value;
};

TEST(SweepTest, NonDefaultConstructibleResultType) {
  static_assert(!std::is_default_constructible_v<MoveOnlyTagged>);
  std::vector<int> jobs{1, 2, 3, 4};
  const auto results =
      parallel_map(jobs, [](int x) { return MoveOnlyTagged(x * 10); });
  ASSERT_EQ(results.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].value, (i + 1) * 10);
  }
}

TEST(SweepTest, ExceptionCancelsRemainingJobs) {
  // Job 0 throws; every later job burns ~1ms before finishing. With the
  // cancellation flag checked at iteration start, at most the jobs already
  // claimed by a worker when the flag flips can still run — far fewer than
  // the full sweep (sequentially: exactly one job runs).
  std::vector<int> jobs(400);
  for (int i = 0; i < 400; ++i) jobs[static_cast<std::size_t>(i)] = i;
  std::atomic<int> executed{0};
  EXPECT_THROW(
      (void)parallel_map(jobs,
                         [&](int x) -> int {
                           executed.fetch_add(1);
                           if (x == 0) throw std::runtime_error("boom");
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(1));
                           return x;
                         }),
      std::runtime_error);
  EXPECT_LT(executed.load(), 400);
}

TEST(SweepTest, NonTrivialResultType) {
  std::vector<int> jobs{1, 2, 3};
  const auto results = parallel_map(jobs, [](int x) {
    return std::vector<int>(static_cast<std::size_t>(x), x);
  });
  EXPECT_EQ(results[2].size(), 3u);
}

TEST(SweepTest, WorkerCountPositive) {
  EXPECT_GE(parallel_worker_count(), 1);
}

}  // namespace
}  // namespace dbp
