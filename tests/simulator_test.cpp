#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(SimulatorTest, EmptyInstanceZeroCost) {
  auto packer = make_packer("first-fit", unit_model());
  const SimulationResult result = simulate(Instance{}, *packer);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  EXPECT_EQ(result.bins_opened, 0u);
  EXPECT_EQ(result.max_open_bins, 0);
}

TEST(SimulatorTest, SingleItemCostsItsLength) {
  Instance instance;
  instance.add(2.0, 7.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);
  EXPECT_DOUBLE_EQ(result.total_cost_from_bins, 5.0);
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_EQ(result.max_open_bins, 1);
  EXPECT_EQ(result.packing_period, (TimeInterval{2.0, 7.0}));
}

TEST(SimulatorTest, CostRateScalesCost) {
  Instance instance;
  instance.add(0.0, 4.0, 0.5);
  const CostModel model{1.0, 2.5, 1e-9};
  const SimulationResult result = simulate(instance, "first-fit", model);
  EXPECT_DOUBLE_EQ(result.total_cost, 10.0);
}

TEST(SimulatorTest, HandComputedFirstFitCost) {
  // Items: A [0,10) 0.6; B [1,4) 0.6 -> new bin; C [2,3) 0.3 -> bin 0.
  // Bin 0: [0, 10) = 10. Bin 1: [1, 4) = 3. Total 13.
  Instance instance;
  instance.add(0.0, 10.0, 0.6);
  instance.add(1.0, 4.0, 0.6);
  instance.add(2.0, 3.0, 0.3);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_DOUBLE_EQ(result.total_cost, 13.0);
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_EQ(result.max_open_bins, 2);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_EQ(result.assignment[1], 1u);
  EXPECT_EQ(result.assignment[2], 0u);
}

TEST(SimulatorTest, HandComputedBestFitDiverges) {
  // A [0,10) 0.3 -> bin0; B [0,10) 0.5 -> bin1? No: BF opens bin only if
  // needed; 0.5 fits bin0 -> bin0 (level .8). C [0,10) 0.15: BF -> bin0
  // (residual .2). FF would also pick bin0. Make them diverge:
  // A [0,10) 0.3 bin0; B [0,10) 0.8 bin1; C [0,10) 0.15: FF->bin0, BF->bin1.
  Instance instance;
  instance.add(0.0, 10.0, 0.3);
  instance.add(0.0, 10.0, 0.8);
  instance.add(0.0, 10.0, 0.15);
  const SimulationResult ff = simulate(instance, "first-fit", unit_model());
  const SimulationResult bf = simulate(instance, "best-fit", unit_model());
  EXPECT_EQ(ff.assignment[2], 0u);
  EXPECT_EQ(bf.assignment[2], 1u);
  EXPECT_DOUBLE_EQ(ff.total_cost, 20.0);
  EXPECT_DOUBLE_EQ(bf.total_cost, 20.0);
}

TEST(SimulatorTest, DepartureFreesCapacityBeforeSimultaneousArrival) {
  // Item A occupies [0, 1); item B arrives exactly at t = 1 and needs the
  // full bin: with departures-first semantics one bin suffices... but a
  // closed bin is never reused, so B opens a second bin; still, max
  // *concurrent* bins is 1.
  Instance instance;
  instance.add(0.0, 1.0, 1.0);
  instance.add(1.0, 2.0, 1.0);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_EQ(result.max_open_bins, 1);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
}

TEST(SimulatorTest, PackersAreSingleUse) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  auto packer = make_packer("first-fit", unit_model());
  (void)simulate(instance, *packer);
  EXPECT_THROW((void)simulate(instance, *packer), PreconditionError);
}

TEST(SimulatorTest, ItemsByBinGroupsAssignment) {
  Instance instance;
  instance.add(0.0, 10.0, 0.6);
  instance.add(0.0, 10.0, 0.6);
  instance.add(0.0, 10.0, 0.4);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const auto groups = result.items_by_bin();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ItemId>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<ItemId>{1}));
}

TEST(SimulatorTest, OpenBinsOverTimeMatchesByHand) {
  Instance instance;
  instance.add(0.0, 4.0, 0.9);   // bin 0: [0,4)
  instance.add(1.0, 2.0, 0.9);   // bin 1: [1,2)
  instance.add(3.0, 6.0, 0.9);   // bin 2: [3,6)
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_EQ(result.open_bins_over_time.value_at(0.5), 1);
  EXPECT_EQ(result.open_bins_over_time.value_at(1.5), 2);
  EXPECT_EQ(result.open_bins_over_time.value_at(2.5), 1);
  EXPECT_EQ(result.open_bins_over_time.value_at(3.5), 2);
  EXPECT_EQ(result.open_bins_over_time.value_at(5.0), 1);
  EXPECT_EQ(result.open_bins_over_time.value_at(6.0), 0);
  EXPECT_DOUBLE_EQ(result.total_cost, 4.0 + 1.0 + 3.0);
}

TEST(SimulatorTest, AllAlgorithmsProduceConsistentAccounting) {
  Instance instance;
  // A mix with churn so bins open and close at staggered times.
  for (int i = 0; i < 60; ++i) {
    const double arrival = static_cast<double>(i % 10);
    const double length = 1.0 + static_cast<double>(i % 4);
    const double size = 0.15 + 0.1 * static_cast<double>(i % 5);
    instance.add(arrival, arrival + length, size);
  }
  PackerOptions options;
  options.known_mu = 4.0;
  for (const std::string& name : all_algorithm_names()) {
    const SimulationResult result = simulate(instance, name, unit_model(), options);
    EXPECT_NEAR(result.total_cost, result.total_cost_from_bins,
                1e-9 * result.total_cost)
        << name;
    EXPECT_GT(result.bins_opened, 0u) << name;
  }
}

}  // namespace
}  // namespace dbp
