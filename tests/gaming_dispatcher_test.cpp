#include "gaming/dispatcher.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

ServerSpec basic_spec() { return ServerSpec{1.0, 6.0}; }  // $6/hour

TEST(ServerSpecTest, CostModelConversion) {
  const CostModel model = basic_spec().to_cost_model();
  EXPECT_DOUBLE_EQ(model.bin_capacity, 1.0);
  EXPECT_DOUBLE_EQ(model.cost_rate, 0.1);  // $6/hour = $0.1/minute
}

TEST(GameServerDispatcherTest, RentsAndReleasesServers) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  const BinId server_a = dispatcher.start_session(1, 0.5, 0.0);
  const BinId server_b = dispatcher.start_session(2, 0.75, 5.0);
  EXPECT_NE(server_a, server_b);
  EXPECT_EQ(dispatcher.active_servers(), 2u);
  EXPECT_EQ(dispatcher.active_sessions(), 2u);
  dispatcher.end_session(1, 30.0);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
  dispatcher.end_session(2, 65.0);
  EXPECT_EQ(dispatcher.active_servers(), 0u);
  EXPECT_EQ(dispatcher.servers_ever_rented(), 2u);
  // Bill: server A [0, 30) + server B [5, 65) = 90 minutes = 1.5 hours = $9.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(65.0), 9.0);
}

TEST(GameServerDispatcherTest, SharesServersLikeFirstFit) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  const BinId a = dispatcher.start_session(1, 0.5, 0.0);
  const BinId b = dispatcher.start_session(2, 0.5, 1.0);
  EXPECT_EQ(a, b);  // second session shares the first server
  EXPECT_EQ(dispatcher.active_servers(), 1u);
}

TEST(GameServerDispatcherTest, OpenServersBilledToNow) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 0.0);
  // 60 running minutes = 1 hour = $6, session still active.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(60.0), 6.0);
}

TEST(GameServerDispatcherTest, EnforcesTimeOrder) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 10.0);
  EXPECT_THROW(dispatcher.start_session(2, 0.5, 5.0), PreconditionError);
  EXPECT_THROW(dispatcher.end_session(1, 5.0), PreconditionError);
}

TEST(GameServerDispatcherTest, RejectsInvalidSpec) {
  EXPECT_THROW(GameServerDispatcher(ServerSpec{0.0, 1.0}, "first-fit"),
               PreconditionError);
  EXPECT_THROW(GameServerDispatcher(ServerSpec{1.0, 0.0}, "first-fit"),
               PreconditionError);
  EXPECT_THROW(GameServerDispatcher(basic_spec(), "no-such-algorithm"),
               PreconditionError);
}

TEST(DispatchComparisonTest, ComparesAlgorithmsOnTrace) {
  CloudGamingConfig config;
  config.horizon_hours = 8.0;
  config.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 77);
  const DispatchComparison comparison = compare_dispatch_algorithms(
      trace, {"first-fit", "best-fit", "next-fit"}, basic_spec());
  ASSERT_EQ(comparison.reports.size(), 3u);
  EXPECT_GT(comparison.optimal_dollars_lower, 0.0);
  for (const DispatchReport& report : comparison.reports) {
    EXPECT_GE(report.total_dollars, comparison.optimal_dollars_lower - 1e-9);
    EXPECT_GT(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0 + 1e-9);
    EXPECT_GE(report.overspend.lower, 1.0 - 1e-9);
    EXPECT_GT(report.peak_servers, 0);
    EXPECT_DOUBLE_EQ(report.server_hours * basic_spec().price_per_hour,
                     report.total_dollars);
  }
}

TEST(RegionalDispatcherTest, RegionsAreIsolatedFleets) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("us-east", 1, 0.4, 0.0);
  dispatcher.start_session("eu-west", 2, 0.4, 0.0);
  // Both sessions would fit one server, but regions cannot share.
  EXPECT_EQ(dispatcher.active_servers(), 2u);
  EXPECT_EQ(dispatcher.regions(), (std::vector<std::string>{"eu-west", "us-east"}));
  dispatcher.end_session(1, 30.0);
  dispatcher.end_session(2, 60.0);
  EXPECT_EQ(dispatcher.active_servers(), 0u);
  // Bill: 30 + 60 minutes = 1.5 hours = $9.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(60.0), 9.0);
}

TEST(RegionalDispatcherTest, SameRegionShares) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("us-east", 1, 0.4, 0.0);
  dispatcher.start_session("us-east", 2, 0.4, 1.0);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
}

TEST(RegionalDispatcherTest, SessionBookkeeping) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("ap", 1, 0.4, 0.0);
  EXPECT_THROW(dispatcher.start_session("ap", 1, 0.4, 1.0), PreconditionError);
  EXPECT_THROW(dispatcher.end_session(99, 1.0), PreconditionError);
}

TEST(DispatchComparisonTest, BestFitOverspendsOnAdversarialPattern) {
  // Miniature sanity check of the paper's message: with heavy churn, FF's
  // bill never exceeds (2*mu+13) times the optimum (Theorem 5).
  CloudGamingConfig config;
  config.horizon_hours = 12.0;
  config.peak_arrivals_per_minute = 1.5;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 3);
  const DispatchComparison comparison =
      compare_dispatch_algorithms(trace, {"first-fit"}, basic_spec());
  const double mu = comparison.metrics.mu;
  EXPECT_LE(comparison.reports[0].overspend.upper, 2.0 * mu + 13.0);
}

}  // namespace
}  // namespace dbp
