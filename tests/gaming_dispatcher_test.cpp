#include "gaming/dispatcher.hpp"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace dbp {
namespace {

ServerSpec basic_spec() { return ServerSpec{1.0, 6.0}; }  // $6/hour

TEST(ServerSpecTest, CostModelConversion) {
  const CostModel model = basic_spec().to_cost_model();
  EXPECT_DOUBLE_EQ(model.bin_capacity, 1.0);
  EXPECT_DOUBLE_EQ(model.cost_rate, 0.1);  // $6/hour = $0.1/minute
}

TEST(GameServerDispatcherTest, RentsAndReleasesServers) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  const BinId server_a = dispatcher.start_session(1, 0.5, 0.0);
  const BinId server_b = dispatcher.start_session(2, 0.75, 5.0);
  EXPECT_NE(server_a, server_b);
  EXPECT_EQ(dispatcher.active_servers(), 2u);
  EXPECT_EQ(dispatcher.active_sessions(), 2u);
  dispatcher.end_session(1, 30.0);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
  dispatcher.end_session(2, 65.0);
  EXPECT_EQ(dispatcher.active_servers(), 0u);
  EXPECT_EQ(dispatcher.servers_ever_rented(), 2u);
  // Bill: server A [0, 30) + server B [5, 65) = 90 minutes = 1.5 hours = $9.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(65.0), 9.0);
}

TEST(GameServerDispatcherTest, SharesServersLikeFirstFit) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  const BinId a = dispatcher.start_session(1, 0.5, 0.0);
  const BinId b = dispatcher.start_session(2, 0.5, 1.0);
  EXPECT_EQ(a, b);  // second session shares the first server
  EXPECT_EQ(dispatcher.active_servers(), 1u);
}

TEST(GameServerDispatcherTest, OpenServersBilledToNow) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 0.0);
  // 60 running minutes = 1 hour = $6, session still active.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(60.0), 6.0);
}

TEST(GameServerDispatcherTest, EnforcesTimeOrder) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 10.0);
  EXPECT_THROW(dispatcher.start_session(2, 0.5, 5.0), PreconditionError);
  EXPECT_THROW(dispatcher.end_session(1, 5.0), PreconditionError);
}

TEST(GameServerDispatcherTest, RejectsInvalidSpec) {
  EXPECT_THROW(GameServerDispatcher(ServerSpec{0.0, 1.0}, "first-fit"),
               PreconditionError);
  EXPECT_THROW(GameServerDispatcher(ServerSpec{1.0, 0.0}, "first-fit"),
               PreconditionError);
  EXPECT_THROW(GameServerDispatcher(basic_spec(), "no-such-algorithm"),
               PreconditionError);
}

TEST(DispatchComparisonTest, ComparesAlgorithmsOnTrace) {
  CloudGamingConfig config;
  config.horizon_hours = 8.0;
  config.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 77);
  const DispatchComparison comparison = compare_dispatch_algorithms(
      trace, {"first-fit", "best-fit", "next-fit"}, basic_spec());
  ASSERT_EQ(comparison.reports.size(), 3u);
  EXPECT_GT(comparison.optimal_dollars_lower, 0.0);
  for (const DispatchReport& report : comparison.reports) {
    EXPECT_GE(report.total_dollars, comparison.optimal_dollars_lower - 1e-9);
    EXPECT_GT(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0 + 1e-9);
    EXPECT_GE(report.overspend.lower, 1.0 - 1e-9);
    EXPECT_GT(report.peak_servers, 0);
    EXPECT_DOUBLE_EQ(report.server_hours * basic_spec().price_per_hour,
                     report.total_dollars);
  }
}

TEST(RegionalDispatcherTest, RegionsAreIsolatedFleets) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("us-east", 1, 0.4, 0.0);
  dispatcher.start_session("eu-west", 2, 0.4, 0.0);
  // Both sessions would fit one server, but regions cannot share.
  EXPECT_EQ(dispatcher.active_servers(), 2u);
  EXPECT_EQ(dispatcher.regions(), (std::vector<std::string>{"eu-west", "us-east"}));
  dispatcher.end_session(1, 30.0);
  dispatcher.end_session(2, 60.0);
  EXPECT_EQ(dispatcher.active_servers(), 0u);
  // Bill: 30 + 60 minutes = 1.5 hours = $9.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(60.0), 9.0);
}

TEST(RegionalDispatcherTest, SameRegionShares) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("us-east", 1, 0.4, 0.0);
  dispatcher.start_session("us-east", 2, 0.4, 1.0);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
}

TEST(RegionalDispatcherTest, SessionBookkeeping) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("ap", 1, 0.4, 0.0);
  EXPECT_THROW(dispatcher.start_session("ap", 1, 0.4, 1.0), PreconditionError);
  EXPECT_THROW(dispatcher.end_session(99, 1.0), PreconditionError);
}

/// Runs `fn`, which must throw DispatchError, and returns its kind().
template <typename Fn>
DispatchErrorKind dispatch_error_kind(Fn&& fn) {
  try {
    fn();
  } catch (const DispatchError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "expected a DispatchError";
  return DispatchErrorKind::kUnknownServer;
}

// Regression (PR 8 satellite): RegionalDispatcher used to surface bare
// PreconditionError from DBP_REQUIRE for unknown session ids and duplicate
// starts instead of the typed DispatchError contract GameServerDispatcher
// documents. Callers switching on kind() must work through the regional
// facade too.
TEST(RegionalDispatcherTest, TypedDispatchErrors) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("ap", 1, 0.4, 0.0);
  EXPECT_EQ(dispatch_error_kind(
                [&] { dispatcher.start_session("ap", 1, 0.4, 1.0); }),
            DispatchErrorKind::kDuplicateStart);
  EXPECT_EQ(dispatch_error_kind([&] { dispatcher.end_session(99, 1.0); }),
            DispatchErrorKind::kUnknownSession);
}

// Regression: a duplicate start naming a *new* region used to create (and
// leak) an empty fleet for that region before the duplicate check fired.
TEST(RegionalDispatcherTest, DuplicateStartLeaksNoEmptyFleet) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("ap", 1, 0.4, 0.0);
  EXPECT_EQ(dispatch_error_kind(
                [&] { dispatcher.start_session("eu-west", 1, 0.4, 1.0); }),
            DispatchErrorKind::kDuplicateStart);
  EXPECT_EQ(dispatcher.regions(), (std::vector<std::string>{"ap"}));
}

// Regression: the session->fleet mapping used to be recorded *before* the
// inner dispatch, so a rejected start (invalid size here) left a stale
// entry behind — end_session on the never-started id then corrupted the
// bookkeeping instead of rejecting it as unknown.
TEST(RegionalDispatcherTest, RejectedStartLeavesNoStaleMapping) {
  RegionalDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session("ap", 1, 0.4, 0.0);
  EXPECT_EQ(dispatch_error_kind(
                [&] { dispatcher.start_session("eu-west", 7, 2.0, 1.0); }),
            DispatchErrorKind::kInvalidSize);
  // The failed start created nothing: no fleet for the new region...
  EXPECT_EQ(dispatcher.regions(), (std::vector<std::string>{"ap"}));
  // ...and no session mapping, so ending the never-started id is *unknown*.
  EXPECT_EQ(dispatch_error_kind([&] { dispatcher.end_session(7, 2.0); }),
            DispatchErrorKind::kUnknownSession);
  // The healthy session is untouched by the failed start.
  dispatcher.end_session(1, 3.0);
  EXPECT_EQ(dispatcher.active_servers(), 0u);
}

// Pinned counter-example (PR 8 satellite): rental_cost_dollars probed with
// `now` earlier than a server's open time must clamp that rental at zero
// dollars, never accrue a negative tail.
TEST(GameServerDispatcherTest, ProbeBeforeOpenBillsZeroNotNegative) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(10.0), 0.0);
  // Forward probes accrue normally from the open time.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(70.0), 6.0);  // 60 min @ $0.1
}

// Regression: a *closed* rental probed mid-life used to bill its full
// length regardless of the probe time; the bill is "accrued by now", so it
// must truncate at the probe (and clamp at zero before the open).
TEST(GameServerDispatcherTest, ClosedRentalTruncatesAtProbeTime) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.9, 0.0);   // server A [0, 30)
  dispatcher.start_session(2, 0.9, 20.0);  // server B [20, 40)
  dispatcher.end_session(1, 30.0);
  dispatcher.end_session(2, 40.0);
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(0.0), 0.0);
  // Probe at 10: A contributes 10 minutes, B nothing yet.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(10.0), 1.0);
  // Probe at 25: A 25 minutes, B 5 minutes.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(25.0), 3.0);
  // Probe past both closes: the full 30 + 20 = 50 minutes.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(100.0), 5.0);
}

TEST(GameServerDispatcherTest, ActiveSizesDescIsSortedAndComplete) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.25, 0.0);
  dispatcher.start_session(2, 0.5, 1.0);
  dispatcher.start_session(3, 0.25, 2.0);
  std::vector<double> sizes(dispatcher.active_sessions());
  dispatcher.active_sizes_desc(sizes);
  EXPECT_EQ(sizes, (std::vector<double>{0.5, 0.25, 0.25}));
  EXPECT_THROW(dispatcher.active_sizes_desc(std::span<double>{}),
               PreconditionError);
}

TEST(DispatchComparisonTest, BestFitOverspendsOnAdversarialPattern) {
  // Miniature sanity check of the paper's message: with heavy churn, FF's
  // bill never exceeds (2*mu+13) times the optimum (Theorem 5).
  CloudGamingConfig config;
  config.horizon_hours = 12.0;
  config.peak_arrivals_per_minute = 1.5;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 3);
  const DispatchComparison comparison =
      compare_dispatch_algorithms(trace, {"first-fit"}, basic_spec());
  const double mu = comparison.metrics.mu;
  EXPECT_LE(comparison.reports[0].overspend.upper, 2.0 * mu + 13.0);
}

}  // namespace
}  // namespace dbp
