#include "algo/factory.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(FactoryTest, BuildsEveryRegisteredAlgorithm) {
  PackerOptions options;
  options.known_mu = 4.0;
  for (const std::string& name : all_algorithm_names()) {
    auto packer = make_packer(name, unit_model(), options);
    ASSERT_NE(packer, nullptr) << name;
    EXPECT_FALSE(packer->name().empty()) << name;
    // Smoke: the packer can place and release an item.
    packer->on_arrival({0, 0.0, 0.5});
    packer->on_departure(0, 1.0);
    EXPECT_EQ(packer->bins().open_count(), 0u) << name;
  }
}

TEST(FactoryTest, UnknownNameThrows) {
  EXPECT_THROW((void)make_packer("frist-fit", unit_model()), PreconditionError);
  EXPECT_THROW((void)make_packer("", unit_model()), PreconditionError);
}

TEST(FactoryTest, KnownMuVariantRequiresMu) {
  EXPECT_THROW((void)make_packer("modified-first-fit-known-mu", unit_model()),
               PreconditionError);
  PackerOptions options;
  options.known_mu = 2.0;
  EXPECT_NO_THROW(make_packer("modified-first-fit-known-mu", unit_model(), options));
}

TEST(FactoryTest, MffKIsConfigurable) {
  PackerOptions options;
  options.mff_k = 4.0;
  auto packer = make_packer("modified-first-fit", unit_model(), options);
  EXPECT_EQ(packer->name(), "modified-first-fit(k=4)");
}

TEST(FactoryTest, HarmonicClassesConfigurable) {
  PackerOptions options;
  options.harmonic_classes = 7;
  auto packer = make_packer("harmonic-first-fit", unit_model(), options);
  EXPECT_EQ(packer->name(), "harmonic-first-fit(K=7)");
}

TEST(FactoryTest, RandomFitSeedIsDeterministic) {
  PackerOptions options;
  options.seed = 7;
  auto a = make_packer("random-fit", unit_model(), options);
  auto b = make_packer("random-fit", unit_model(), options);
  for (ItemId i = 0; i < 200; ++i) {
    const double size = 0.1 + 0.05 * static_cast<double>(i % 5);
    EXPECT_EQ(a->on_arrival({i, 0.0, size}), b->on_arrival({i, 0.0, size}));
  }
}

TEST(FactoryTest, PaperAlgorithmsAreSubsetOfAll) {
  const auto& all = all_algorithm_names();
  for (const std::string& name : paper_algorithm_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

}  // namespace
}  // namespace dbp
