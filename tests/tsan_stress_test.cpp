// Thread-safety stress suite, written for the DBP_SANITIZE=thread build
// (ctest -L tsan). TSan builds force OpenMP off (libgomp is not
// TSan-instrumented — see docs/static_analysis.md), so all concurrency
// here comes from std::thread: the suite hammers exactly the surfaces the
// library documents as thread-safe — parallel_map's cancellation flag,
// MetricsRegistry's relaxed atomics and registration mutex, RunTracer's
// ring buffer, and concurrent estimate_opt_total calls with per-thread
// oracles. The suite also runs (and must pass) in plain builds.
#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel_map.hpp"
#include "core/instance.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "obs/run_tracer.hpp"
#include "opt/bin_count.hpp"
#include "opt/opt_total.hpp"

namespace dbp {
namespace {

constexpr int kThreads = 4;
constexpr int kIterations = 200;

void run_on_threads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (std::thread& thread : threads) thread.join();
}

Instance make_instance(std::uint64_t seed) {
  Instance instance;
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < 120; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(state >> 11) /
                     static_cast<double>(1ULL << 53);
    const Time arrival = u * 50.0;
    instance.add(arrival, arrival + 1.0 + u * 10.0, 0.05 + 0.9 * u);
  }
  return instance;
}

TEST(TsanStress, ParallelMapConcurrentThrowAndCancel) {
  // Several threads each run a parallel_map whose jobs race a shared
  // counter and one of which throws; the cancellation flag and the
  // exception slot are the surfaces under test.
  run_on_threads([](int t) {
    for (int iter = 0; iter < kIterations / 4; ++iter) {
      std::vector<int> jobs(64);
      for (int j = 0; j < 64; ++j) jobs[static_cast<std::size_t>(j)] = j;
      std::atomic<int> touched{0};
      const int poison = (iter + t) % 64;
      try {
        parallel_map(jobs, [&](int job) {
          touched.fetch_add(1, std::memory_order_relaxed);
          if (job == poison) throw std::runtime_error("poisoned job");
          return job * 2;
        });
        FAIL() << "parallel_map swallowed the poisoned job's exception";
      } catch (const std::runtime_error& err) {
        EXPECT_STREQ(err.what(), "poisoned job");
      }
      EXPECT_GE(touched.load(), 1);
    }
  });
}

TEST(TsanStress, ParallelMapConcurrentCleanRuns) {
  run_on_threads([](int) {
    for (int iter = 0; iter < kIterations / 4; ++iter) {
      std::vector<int> jobs(32);
      for (int j = 0; j < 32; ++j) jobs[static_cast<std::size_t>(j)] = j;
      const std::vector<int> doubled = parallel_map(jobs, [](int job) {
        return job * 2;
      });
      ASSERT_EQ(doubled.size(), jobs.size());
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(doubled[j], jobs[j] * 2);
      }
    }
  });
}

TEST(TsanStress, MetricsRegistryConcurrentHammering) {
  obs::MetricsRegistry registry;
  run_on_threads([&](int t) {
    // Shared names force registration races; per-thread names force
    // concurrent growth of the storage deques.
    obs::Counter& shared = registry.counter("stress.shared");
    for (int iter = 0; iter < kIterations; ++iter) {
      shared.add();
      registry.counter("stress.thread." + std::to_string(t)).add();
      registry.counter("stress.mod." + std::to_string(iter % 5)).add(2);
      registry.gauge("stress.gauge").set(static_cast<double>(iter));
      registry.timer("stress.timer").record_ms(0.25);
      (void)registry.counter_value("stress.shared");
      (void)registry.timer_stats("stress.timer");
    }
  });
  EXPECT_EQ(registry.counter_value("stress.shared"),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  const auto stats = registry.timer_stats("stress.timer");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, static_cast<std::uint64_t>(kThreads) * kIterations);
  std::ostringstream out;
  registry.write_text(out, false);
  EXPECT_NE(out.str().find("stress.shared"), std::string::npos);
}

TEST(TsanStress, RunTracerConcurrentRecording) {
  obs::RunTracer tracer(1u << 10);  // small ring: eviction races included
  run_on_threads([&](int t) {
    for (int iter = 0; iter < kIterations; ++iter) {
      obs::TraceRecord record;
      record.kind = obs::TraceKind::kArrival;
      record.item = static_cast<ItemId>(t * kIterations + iter);
      tracer.record(std::move(record));
      if (iter % 32 == 0) (void)tracer.snapshot();
    }
  });
  EXPECT_EQ(tracer.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(tracer.size() + tracer.dropped(), tracer.total_recorded());
}

TEST(TsanStress, ConcurrentOptTotalWithThreadLocalObs) {
  // Each thread runs the full estimator with its own oracle, tracer and
  // metrics; the thread-local ObsScope must keep the contexts isolated.
  std::vector<OptTotalResult> results(kThreads);
  run_on_threads([&](int t) {
    const Instance instance = make_instance(0x9E3779B97F4A7C15ULL);
    const CostModel model{};
    BinCountOracle oracle(model);
    obs::RunTracer tracer;
    obs::MetricsRegistry metrics;
    obs::ObsScope scope(&tracer, &metrics);
    OptTotalOptions options;
    options.oracle = &oracle;
    results[static_cast<std::size_t>(t)] =
        estimate_opt_total(instance, model, options);
    EXPECT_GT(tracer.total_recorded(), 0u);
  });
  // Identical input on every thread: the results must agree bit-for-bit.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0].lower_cost, results[static_cast<std::size_t>(t)].lower_cost);
    EXPECT_EQ(results[0].upper_cost, results[static_cast<std::size_t>(t)].upper_cost);
    EXPECT_EQ(results[0].segments, results[static_cast<std::size_t>(t)].segments);
  }
}

}  // namespace
}  // namespace dbp
