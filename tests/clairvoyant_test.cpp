#include "algo/clairvoyant.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(ClairvoyantTest, RejectsOnlineArrivals) {
  DurationAwarePacker packer(unit_model(),
                             DurationAwarePacker::Policy::kAlignDepartures);
  EXPECT_THROW((void)packer.on_arrival(ArrivingItem{0, 0.0, 0.5}), PreconditionError);
}

TEST(ClairvoyantTest, Names) {
  EXPECT_EQ(DurationAwarePacker(unit_model(),
                                DurationAwarePacker::Policy::kAlignDepartures)
                .name(),
            "align-departures-fit");
  EXPECT_EQ(DurationAwarePacker(unit_model(),
                                DurationAwarePacker::Policy::kMinimizeExtension)
                .name(),
            "min-extension-fit");
}

TEST(ClairvoyantTest, AlignDeparturesPrefersMatchingCloseTime) {
  DurationAwarePacker packer(unit_model(),
                             DurationAwarePacker::Policy::kAlignDepartures);
  // Bin 0 closes at 10, bin 1 closes at 4.
  packer.on_arrival_clairvoyant({0, 0.0, 10.0, 0.6});
  packer.on_arrival_clairvoyant({1, 0.0, 4.0, 0.6});
  EXPECT_DOUBLE_EQ(packer.projected_close(0), 10.0);
  EXPECT_DOUBLE_EQ(packer.projected_close(1), 4.0);
  // An item departing at 4.5 aligns with bin 1, even though FF -> bin 0.
  EXPECT_EQ(packer.on_arrival_clairvoyant({2, 1.0, 4.5, 0.3}), 1u);
  // An item departing at 9 aligns with bin 0.
  EXPECT_EQ(packer.on_arrival_clairvoyant({3, 1.0, 9.0, 0.3}), 0u);
}

TEST(ClairvoyantTest, MinExtensionPrefersNoExtension) {
  DurationAwarePacker packer(unit_model(),
                             DurationAwarePacker::Policy::kMinimizeExtension);
  packer.on_arrival_clairvoyant({0, 0.0, 10.0, 0.6});  // bin 0 closes at 10
  packer.on_arrival_clairvoyant({1, 0.0, 4.0, 0.6});   // bin 1 closes at 4
  // Item departing at 8: extends bin 1 by 4 but bin 0 by 0 -> bin 0.
  EXPECT_EQ(packer.on_arrival_clairvoyant({2, 1.0, 8.0, 0.3}), 0u);
  // Item departing at 12: extends bin 0 by 2, bin 1 by 8 -> bin 0.
  EXPECT_EQ(packer.on_arrival_clairvoyant({3, 1.0, 12.0, 0.05}), 0u);
  EXPECT_DOUBLE_EQ(packer.projected_close(0), 12.0);
}

TEST(ClairvoyantTest, OpensNewBinOnlyWhenNothingFits) {
  DurationAwarePacker packer(unit_model(),
                             DurationAwarePacker::Policy::kAlignDepartures);
  packer.on_arrival_clairvoyant({0, 0.0, 5.0, 0.7});
  // 0.4 does not fit -> new bin.
  EXPECT_EQ(packer.on_arrival_clairvoyant({1, 0.0, 5.0, 0.4}), 1u);
  // 0.2 fits both; stays in an existing bin.
  const BinId chosen = packer.on_arrival_clairvoyant({2, 0.0, 5.0, 0.2});
  EXPECT_LE(chosen, 1u);
  EXPECT_EQ(packer.bins().total_bins_opened(), 2u);
}

TEST(ClairvoyantTest, DeparturesMaintainProjectedClose) {
  DurationAwarePacker packer(unit_model(),
                             DurationAwarePacker::Policy::kAlignDepartures);
  packer.on_arrival_clairvoyant({0, 0.0, 10.0, 0.3});
  packer.on_arrival_clairvoyant({1, 0.0, 6.0, 0.3});
  EXPECT_DOUBLE_EQ(packer.projected_close(0), 10.0);
  packer.on_departure(0, 10.0);  // longest leaves; close estimate drops
  EXPECT_DOUBLE_EQ(packer.projected_close(0), 6.0);
  packer.on_departure(1, 6.0);
  EXPECT_EQ(packer.bins().open_count(), 0u);
  EXPECT_THROW((void)packer.projected_close(0), PreconditionError);
}

TEST(ClairvoyantTest, SimulatorRoutesFullItems) {
  RandomInstanceConfig config;
  config.item_count = 300;
  const Instance instance = generate_random_instance(config, 12);
  for (const std::string& name : clairvoyant_algorithm_names()) {
    const SimulationResult result = simulate(instance, name, unit_model());
    EXPECT_GT(result.bins_opened, 0u) << name;
    EXPECT_NEAR(result.total_cost, result.total_cost_from_bins,
                1e-9 * result.total_cost)
        << name;
  }
}

TEST(ClairvoyantTest, DepartureKnowledgeAvoidsBinExtension) {
  // b0 holds a short item (closes at 2), b1 a long one (closes at 10). A
  // mid-length item fits both: First Fit extends b0's life from 2 to 9
  // (+7 cost); min-extension parks it in b1 for free.
  Instance instance;
  instance.add(0.0, 2.0, 0.4);   // -> b0
  instance.add(0.0, 10.0, 0.7);  // does not fit b0 -> b1
  instance.add(1.0, 9.0, 0.3);   // the contested item
  const SimulationResult ff = simulate(instance, "first-fit", unit_model());
  const SimulationResult min_ext =
      simulate(instance, "min-extension-fit", unit_model());
  EXPECT_EQ(ff.assignment[2], 0u);
  EXPECT_EQ(min_ext.assignment[2], 1u);
  EXPECT_DOUBLE_EQ(ff.total_cost, 9.0 + 10.0);
  EXPECT_DOUBLE_EQ(min_ext.total_cost, 2.0 + 10.0);
}

TEST(ClairvoyantTest, FactoryIntegration) {
  for (const std::string& name : clairvoyant_algorithm_names()) {
    auto packer = make_packer(name, unit_model());
    ASSERT_NE(packer, nullptr);
    EXPECT_NE(dynamic_cast<ClairvoyantPacker*>(packer.get()), nullptr) << name;
  }
}

}  // namespace
}  // namespace dbp
