// Edge cases across the stack: negative times, extreme scales, mass ties,
// capacity corner cases.
#include <gtest/gtest.h>

#include "analysis/ratio.hpp"
#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(EdgeCaseTest, NegativeTimesAreFine) {
  Instance instance;
  instance.add(-10.0, -2.0, 0.5);
  instance.add(-5.0, 3.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_DOUBLE_EQ(result.total_cost, 13.0);  // one bin [-10, 3)
  EXPECT_EQ(result.bins_opened, 1u);
  const OptTotalResult opt = estimate_opt_total(instance, unit_model());
  EXPECT_DOUBLE_EQ(opt.lower_cost, 13.0);
}

TEST(EdgeCaseTest, TinyAndHugeTimeScalesKeepRatiosFinite) {
  for (const double scale : {1e-6, 1e6}) {
    Instance instance;
    instance.add(0.0, 1.0 * scale, 0.6);
    instance.add(0.25 * scale, 1.25 * scale, 0.6);
    const SimulationResult result = simulate(instance, "first-fit", unit_model());
    const OptTotalResult opt = estimate_opt_total(instance, unit_model());
    const RatioBounds ratio = competitive_ratio_bounds(result.total_cost, opt);
    EXPECT_GE(ratio.lower, 1.0 - 1e-9) << scale;
    EXPECT_LT(ratio.upper, 3.0) << scale;
  }
}

TEST(EdgeCaseTest, MassSimultaneousArrivalsAndDepartures) {
  // 500 identical items, all [0, 1): one big batch in, one big batch out.
  Instance instance;
  for (int i = 0; i < 500; ++i) instance.add(0.0, 1.0, 0.25);
  const SimulationResult result = simulate(instance, "best-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 125u);  // 4 per bin
  EXPECT_EQ(result.max_open_bins, 125);
  EXPECT_DOUBLE_EQ(result.total_cost, 125.0);
  const OptTotalResult opt = estimate_opt_total(instance, unit_model());
  EXPECT_TRUE(opt.exact);
  EXPECT_DOUBLE_EQ(opt.lower_cost, 125.0);  // optimal too
}

TEST(EdgeCaseTest, ItemExactlyAtCapacity) {
  Instance instance;
  instance.add(0.0, 1.0, 1.0);
  instance.add(0.0, 1.0, 1.0);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 2u);
}

TEST(EdgeCaseTest, InstantTurnoverChains) {
  // Item i departs exactly when item i+1 arrives; departures process first,
  // so each bin closes and a fresh one opens: n(t) stays 1 throughout.
  Instance instance;
  for (int i = 0; i < 50; ++i) {
    instance.add(static_cast<double>(i), static_cast<double>(i + 1), 0.9);
  }
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 50u);
  EXPECT_EQ(result.max_open_bins, 1);
  EXPECT_DOUBLE_EQ(result.total_cost, 50.0);
}

TEST(EdgeCaseTest, VeryLongLivedItemAmongChurn) {
  Instance instance;
  instance.add(0.0, 1000.0, 0.5);  // anchor
  for (int i = 0; i < 200; ++i) {
    instance.add(5.0 * i, 5.0 * i + 1.0, 0.5);  // churners share the anchor bin
  }
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_DOUBLE_EQ(result.total_cost, 1000.0);
  const InstanceMetrics metrics = compute_metrics(instance);
  EXPECT_DOUBLE_EQ(metrics.mu, 1000.0);
}

TEST(EdgeCaseTest, NonUnitCapacityEndToEnd) {
  const CostModel model{16.0, 0.25, 1e-9};
  Instance instance;
  instance.add(0.0, 4.0, 10.0);
  instance.add(1.0, 3.0, 6.0);   // exactly fills the bin with item 0
  instance.add(1.5, 2.0, 0.5);   // needs a second bin
  const InstanceEvaluation evaluation =
      evaluate_algorithms(instance, {"first-fit"}, model);
  EXPECT_EQ(evaluation.algorithms[0].bins_opened, 2u);
  // Bin 0: [0,4) = 4; bin 1: [1.5,2) = 0.5 -> 4.5 * C(0.25).
  EXPECT_DOUBLE_EQ(evaluation.algorithms[0].total_cost, 4.5 * 0.25);
}

TEST(EdgeCaseTest, SingleItemEveryAlgorithmIdentical) {
  Instance instance;
  instance.add(2.0, 9.0, 0.7);
  PackerOptions options;
  options.known_mu = 1.0;
  for (const std::string& name : all_algorithm_names()) {
    const SimulationResult result = simulate(instance, name, unit_model(), options);
    EXPECT_DOUBLE_EQ(result.total_cost, 7.0) << name;
    EXPECT_EQ(result.bins_opened, 1u) << name;
  }
}

TEST(EdgeCaseTest, ZeroWidthOptSegmentsIgnored) {
  // Arrival and departure batches at the same instant create zero-width
  // segments; the estimator must skip them without contributing cost.
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  instance.add(1.0, 2.0, 0.5);
  instance.add(1.0, 2.0, 0.4);
  const OptTotalResult opt = estimate_opt_total(instance, unit_model());
  EXPECT_DOUBLE_EQ(opt.lower_cost, 2.0);
  EXPECT_TRUE(opt.exact);
}

}  // namespace
}  // namespace dbp
