// Exercises the DBP_AUDIT deep invariant checks (core/audit.hpp). This
// suite is only registered through dbp_add_audit_test, so it links against
// dbp_audit_lib — the algo/sim/opt core recompiled with DBP_AUDIT=1 — and
// every place/remove/snapshot below runs the full audit machinery.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "algo/bin_manager.hpp"
#include "algo/factory.hpp"
#include "core/audit.hpp"
#include "core/error.hpp"
#include "core/instance.hpp"
#include "opt/opt_total.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"

namespace dbp {
namespace {

static_assert(DBP_AUDIT_ENABLED == 1,
              "audit_invariants_test must be built via dbp_add_audit_test "
              "(DBP_AUDIT=1); a no-audit build would test nothing");

/// Deterministic in-test generator (no src/workload dependency, no rand()):
/// a plain 64-bit LCG mapped to [0, 1).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}

  double next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state_ >> 11) /
           static_cast<double>(1ULL << 53);
  }

 private:
  std::uint64_t state_;
};

Instance make_instance(std::size_t items, std::uint64_t seed) {
  Instance instance;
  Lcg lcg(seed);
  for (std::size_t i = 0; i < items; ++i) {
    const Time arrival = lcg.next() * 100.0;
    const Time length = 0.5 + lcg.next() * 25.0;
    const double size = 0.02 + 0.93 * lcg.next();
    instance.add(arrival, arrival + length, size);
  }
  return instance;
}

TEST(AuditMacros, EnabledInThisBinary) {
  EXPECT_TRUE(audit_enabled());
}

TEST(AuditMacros, FailingCheckThrowsInvariantError) {
  EXPECT_THROW(DBP_AUDIT_CHECK(1 + 1 == 3, "arithmetic broke"), InvariantError);
  EXPECT_NO_THROW(DBP_AUDIT_CHECK(1 + 1 == 2, "arithmetic fine"));
}

TEST(BinManagerAudit, ScriptedLifecyclePassesDeepAudit) {
  BinManager manager(CostModel{});
  const BinId b0 = manager.open_bin(0.0);
  const BinId b1 = manager.open_bin(0.0);
  manager.place(ArrivingItem{0, 0.0, 0.6}, b0);
  manager.place(ArrivingItem{1, 1.0, 0.3}, b0);
  manager.place(ArrivingItem{2, 1.0, 0.9}, b1);
  manager.audit();

  manager.remove(1, 2.0);
  manager.audit();
  manager.place(ArrivingItem{3, 3.0, 0.35}, b0);
  manager.audit();

  manager.remove(0, 4.0);
  manager.remove(3, 4.0);  // empties and closes b0
  EXPECT_FALSE(manager.is_open(b0));
  manager.remove(2, 5.0);
  manager.audit();
  EXPECT_EQ(manager.open_count(), 0u);
  EXPECT_EQ(manager.active_item_count(), 0u);
}

TEST(BinManagerAudit, RandomChurnKeepsInvariants) {
  const Instance instance = make_instance(400, 0x243F6A8885A308D3ULL);
  BinManager manager(CostModel{});
  // Replay the event sequence with trivial first-fit placement; every
  // place/remove self-audits the touched bin, and we run the full audit
  // at a coarse cadence.
  const std::vector<Event> events = build_event_sequence(instance);
  std::size_t step = 0;
  for (const Event& event : events) {
    const Item& item = instance.item(event.item);
    if (event.kind == EventKind::kArrival) {
      BinId chosen = kNoBin;
      for (const BinId bin : manager.open_bins()) {
        if (manager.fits(item.size, bin)) {
          chosen = bin;
          break;
        }
      }
      if (chosen == kNoBin) chosen = manager.open_bin(event.time);
      manager.place(ArrivingItem{item.id, item.arrival, item.size}, chosen);
    } else {
      manager.remove(item.id, event.time);
    }
    if (++step % 64 == 0) manager.audit();
  }
  manager.audit();
  EXPECT_EQ(manager.active_item_count(), 0u);
  EXPECT_EQ(manager.open_count(), 0u);
}

TEST(PackerAudit, AllFactoryAlgorithmsRunUnderAudit) {
  const Instance instance = make_instance(300, 0x9E3779B97F4A7C15ULL);
  const CostModel model{};
  PackerOptions options;
  options.known_mu = 64.0;  // generators above cap the duration ratio at 52
  for (const std::string& name : all_algorithm_names()) {
    SCOPED_TRACE(name);
    const SimulationResult result = simulate(instance, name, model, options);
    EXPECT_GT(result.bins_opened, 0u);
    EXPECT_GT(result.total_cost, 0.0);
  }
}

TEST(OptTotalAudit, RleShadowMultisetAgreesWithDenseBookkeeping) {
  const Instance instance = make_instance(350, 0xD1B54A32D192ED03ULL);
  const CostModel model{};
  const OptTotalResult result = estimate_opt_total(instance, model, {});
  EXPECT_GT(result.segments, 0u);
  EXPECT_GT(result.distinct_snapshots, 0u);
  EXPECT_LE(result.lower_cost, result.upper_cost * (1.0 + 1e-9));
}

TEST(OptTotalAudit, DuplicateSizesStressRleRuns) {
  // Many exactly-equal sizes force multi-count RLE runs, the case where a
  // broken run-length encoding would diverge from the dense multiset.
  Instance instance;
  Lcg lcg(0xA5A5A5A5DEADBEEFULL);
  for (std::size_t i = 0; i < 240; ++i) {
    const Time arrival = lcg.next() * 40.0;
    const Time length = 1.0 + lcg.next() * 10.0;
    const double size = (i % 3 == 0) ? 0.25 : (i % 3 == 1 ? 0.5 : 0.125);
    instance.add(arrival, arrival + length, size);
  }
  const OptTotalResult result = estimate_opt_total(instance, CostModel{}, {});
  EXPECT_GT(result.segments, 0u);
}

}  // namespace
}  // namespace dbp
