#include "workload/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/error.hpp"

namespace dbp {
namespace {

const TimeInterval kPeriod{0.0, 100.0};

TEST(FaultScheduleTest, PoissonPlanIsDeterministic) {
  const FaultPlan a =
      make_poisson_fault_plan(kPeriod, 0.1, 0.05, CrashTarget::kRandom, 7);
  const FaultPlan b =
      make_poisson_fault_plan(kPeriod, 0.1, 0.05, CrashTarget::kRandom, 7);
  EXPECT_EQ(a, b);
}

TEST(FaultScheduleTest, PoissonSeedsDecorrelate) {
  const FaultPlan a =
      make_poisson_fault_plan(kPeriod, 0.2, 0.1, CrashTarget::kFullest, 1);
  const FaultPlan b =
      make_poisson_fault_plan(kPeriod, 0.2, 0.1, CrashTarget::kFullest, 2);
  EXPECT_NE(a, b);
}

TEST(FaultScheduleTest, PoissonPlanIsSortedAndInPeriod) {
  const FaultPlan plan =
      make_poisson_fault_plan(kPeriod, 0.3, 0.2, CrashTarget::kEmptiest, 13);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.empty());
  for (const CrashFault& crash : plan.crashes) {
    EXPECT_EQ(crash.target, CrashTarget::kEmptiest);
    EXPECT_GE(crash.time, kPeriod.begin);
    EXPECT_LT(crash.time, kPeriod.end);
  }
  for (const AnomalyFault& anomaly : plan.anomalies) {
    EXPECT_GE(anomaly.time, kPeriod.begin);
    EXPECT_LT(anomaly.time, kPeriod.end);
  }
}

TEST(FaultScheduleTest, ZeroRatesYieldEmptyPlan) {
  const FaultPlan plan =
      make_poisson_fault_plan(kPeriod, 0.0, 0.0, CrashTarget::kFullest, 5);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultScheduleTest, AnomalyKindsCoverTheTaxonomyEventually) {
  // At a high rate over a long period every kind should be drawn.
  const FaultPlan plan =
      make_poisson_fault_plan({0.0, 2000.0}, 0.0, 0.5, CrashTarget::kFullest, 3);
  std::array<bool, kAnomalyKindCount> seen{};
  for (const AnomalyFault& anomaly : plan.anomalies) {
    seen[static_cast<std::size_t>(anomaly.kind)] = true;
  }
  for (std::size_t kind = 0; kind < kAnomalyKindCount; ++kind) {
    EXPECT_TRUE(seen[kind]) << to_string(static_cast<AnomalyKind>(kind));
  }
}

TEST(FaultScheduleTest, FullestBinPlanIsEvenlySpaced) {
  const FaultPlan plan = make_fullest_bin_crash_plan(kPeriod, 4, 9);
  ASSERT_EQ(plan.crashes.size(), 4u);
  EXPECT_TRUE(plan.anomalies.empty());
  EXPECT_NO_THROW(plan.validate());
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    EXPECT_EQ(plan.crashes[i].target, CrashTarget::kFullest);
    // 4 crashes over [0, 100]: interior points 20, 40, 60, 80.
    EXPECT_DOUBLE_EQ(plan.crashes[i].time, 20.0 * static_cast<double>(i + 1));
  }
}

TEST(FaultScheduleTest, DedicationPlanTargetsLargeArrivals) {
  Instance instance;
  instance.add(5.0, 20.0, 0.7);   // large: dedication candidate
  instance.add(1.0, 10.0, 0.3);   // small: ignored
  instance.add(3.0, 30.0, 0.6);   // large
  instance.add(8.0, 12.0, 0.5);   // exactly at threshold: not strictly larger
  const FaultPlan plan = make_dedication_crash_plan(instance, 0.5, 10, 4);
  ASSERT_EQ(plan.crashes.size(), 2u);
  // Crashes land at the large arrivals' times, earliest first, kNewest so
  // the just-dedicated (freshest) server is the victim.
  EXPECT_DOUBLE_EQ(plan.crashes[0].time, 3.0);
  EXPECT_DOUBLE_EQ(plan.crashes[1].time, 5.0);
  for (const CrashFault& crash : plan.crashes) {
    EXPECT_EQ(crash.target, CrashTarget::kNewest);
  }
}

TEST(FaultScheduleTest, DedicationPlanHonorsMaxCrashes) {
  Instance instance;
  for (int i = 0; i < 6; ++i) {
    instance.add(static_cast<Time>(i), static_cast<Time>(i) + 5.0, 0.9);
  }
  const FaultPlan plan = make_dedication_crash_plan(instance, 0.5, 3, 1);
  EXPECT_EQ(plan.crashes.size(), 3u);
  // Earliest arrivals kept after truncation.
  EXPECT_DOUBLE_EQ(plan.crashes.back().time, 2.0);
}

}  // namespace
}  // namespace dbp
