#include "opt/opt_total.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(OptTotalTest, EmptyInstance) {
  const OptTotalResult result = estimate_opt_total(Instance{}, unit_model());
  EXPECT_DOUBLE_EQ(result.lower_cost, 0.0);
  EXPECT_DOUBLE_EQ(result.upper_cost, 0.0);
  EXPECT_TRUE(result.exact);
}

TEST(OptTotalTest, SingleItem) {
  Instance instance;
  instance.add(1.0, 5.0, 0.5);
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower_cost, 4.0);
  EXPECT_DOUBLE_EQ(result.upper_cost, 4.0);
}

TEST(OptTotalTest, TwoDisjointItemsOneBinEach) {
  Instance instance;
  instance.add(0.0, 2.0, 0.9);
  instance.add(5.0, 6.0, 0.9);
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower_cost, 3.0);  // gap costs nothing
}

TEST(OptTotalTest, OverlappingLargeItemsForceTwoBins) {
  Instance instance;
  instance.add(0.0, 4.0, 0.9);
  instance.add(2.0, 6.0, 0.9);
  // OPT(t): 1 on [0,2), 2 on [2,4), 1 on [4,6) -> 2+4+2 = 8.
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower_cost, 8.0);
  EXPECT_DOUBLE_EQ(result.upper_cost, 8.0);
}

TEST(OptTotalTest, RepackingBeatsOnlineStickiness) {
  // Paper Figure 2's essence: k=2 bins of small items, survivors could be
  // repacked into one bin. Items: 4 of size 0.5 on [0,1); survivors (one
  // "per bin") live to [0,4).
  Instance instance;
  instance.add(0.0, 4.0, 0.5);  // survivor of bin 0
  instance.add(0.0, 1.0, 0.5);
  instance.add(0.0, 4.0, 0.5);  // survivor of bin 1
  instance.add(0.0, 1.0, 0.5);
  // OPT: 2 bins on [0,1), 1 bin on [1,4) -> 2 + 3 = 5.
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_TRUE(result.exact);
  EXPECT_DOUBLE_EQ(result.lower_cost, 5.0);
}

TEST(OptTotalTest, CostRateScales) {
  Instance instance;
  instance.add(0.0, 2.0, 0.5);
  const CostModel model{1.0, 3.0, 1e-9};
  const OptTotalResult result = estimate_opt_total(instance, model);
  EXPECT_DOUBLE_EQ(result.lower_cost, 6.0);
}

TEST(OptTotalTest, ClosedFormBoundsAreDominated) {
  Instance instance;
  instance.add(0.0, 4.0, 0.9);
  instance.add(2.0, 6.0, 0.9);
  instance.add(3.0, 7.0, 0.2);
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_GE(result.lower_cost, result.closed_form.demand_lower - 1e-12);
  EXPECT_GE(result.lower_cost, result.closed_form.span_lower - 1e-12);
  EXPECT_LE(result.lower_cost, result.upper_cost + 1e-12);
}

TEST(OptTotalTest, SegmentsCounted) {
  Instance instance;
  instance.add(0.0, 2.0, 0.5);
  instance.add(1.0, 3.0, 0.5);
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  // Segments: [0,1), [1,2), [2,3).
  EXPECT_EQ(result.segments, 3u);
  EXPECT_EQ(result.exact_segments, 3u);
}

TEST(OptTotalTest, EqualSizeFastPathKeepsLargeInstancesExact) {
  Instance instance;
  for (int i = 0; i < 2000; ++i) {
    const double arrival = 0.001 * static_cast<double>(i);
    instance.add(arrival, arrival + 1.0, 0.125);
  }
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_TRUE(result.exact);
  EXPECT_GT(result.lower_cost, 0.0);
}

TEST(OptTotalTest, ClassicMaxBinsBounds) {
  Instance instance;
  instance.add(0.0, 4.0, 0.9);
  instance.add(2.0, 6.0, 0.9);
  instance.add(3.0, 5.0, 0.9);  // three large items overlap in [3, 4)
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_EQ(result.max_bins_lower, 3u);
  EXPECT_EQ(result.max_bins_upper, 3u);
}

TEST(OptTotalTest, ClassicMaxBinsCanBeatPeakNaiveCount) {
  // Six half-size items overlapping: OPT packs 2 per bin -> 3 bins peak.
  Instance instance;
  for (int i = 0; i < 6; ++i) instance.add(0.0, 2.0 + i * 0.1, 0.5);
  const OptTotalResult result = estimate_opt_total(instance, unit_model());
  EXPECT_EQ(result.max_bins_upper, 3u);
}

TEST(RatioBoundsTest, Computation) {
  OptTotalResult opt;
  opt.lower_cost = 2.0;
  opt.upper_cost = 4.0;
  const RatioBounds ratio = competitive_ratio_bounds(8.0, opt);
  EXPECT_DOUBLE_EQ(ratio.lower, 2.0);
  EXPECT_DOUBLE_EQ(ratio.upper, 4.0);
}

TEST(RatioBoundsTest, RejectsDegenerateInput) {
  OptTotalResult opt;
  opt.lower_cost = 0.0;
  opt.upper_cost = 1.0;
  EXPECT_THROW((void)competitive_ratio_bounds(1.0, opt), PreconditionError);
  opt.lower_cost = 1.0;
  EXPECT_THROW((void)competitive_ratio_bounds(-1.0, opt), PreconditionError);
}

}  // namespace
}  // namespace dbp
