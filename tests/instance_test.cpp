#include "core/instance.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/item.hpp"

namespace dbp {
namespace {

TEST(ItemTest, DerivedQuantities) {
  const Item item{3, 1.0, 4.0, 0.25};
  EXPECT_DOUBLE_EQ(item.interval_length(), 3.0);
  EXPECT_DOUBLE_EQ(item.resource_demand(), 0.75);
  EXPECT_EQ(item.interval(), (TimeInterval{1.0, 4.0}));
}

TEST(ItemTest, ActivityIsHalfOpen) {
  const Item item{0, 1.0, 4.0, 0.25};
  EXPECT_TRUE(item.active_at(1.0));
  EXPECT_TRUE(item.active_at(3.999));
  EXPECT_FALSE(item.active_at(4.0));
  EXPECT_FALSE(item.active_at(0.999));
}

TEST(ItemTest, ValidationRejectsBadItems) {
  EXPECT_NO_THROW((Item{0, 0.0, 1.0, 0.5}).validate());
  EXPECT_THROW((Item{0, 1.0, 1.0, 0.5}).validate(), PreconditionError);  // d == a
  EXPECT_THROW((Item{0, 2.0, 1.0, 0.5}).validate(), PreconditionError);  // d < a
  EXPECT_THROW((Item{0, 0.0, 1.0, 0.0}).validate(), PreconditionError);  // size 0
  EXPECT_THROW((Item{0, 0.0, 1.0, -0.5}).validate(), PreconditionError);
}

TEST(InstanceTest, AddAssignsDenseIds) {
  Instance instance;
  EXPECT_EQ(instance.add(0.0, 1.0, 0.5), 0u);
  EXPECT_EQ(instance.add(1.0, 2.0, 0.25), 1u);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_EQ(instance.item(0).id, 0u);
  EXPECT_EQ(instance.item(1).id, 1u);
}

TEST(InstanceTest, AddValidates) {
  Instance instance;
  EXPECT_THROW(instance.add(1.0, 1.0, 0.5), PreconditionError);
  EXPECT_THROW(instance.add(0.0, 1.0, 0.0), PreconditionError);
  EXPECT_EQ(instance.size(), 0u);
}

TEST(InstanceTest, ItemOutOfRangeThrows) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  EXPECT_THROW((void)instance.item(1), PreconditionError);
}

TEST(InstanceTest, FromItemsReassignsIds) {
  std::vector<Item> items{{99, 0.0, 1.0, 0.5}, {7, 1.0, 2.0, 0.25}};
  const Instance instance = Instance::from_items(std::move(items));
  EXPECT_EQ(instance.item(0).id, 0u);
  EXPECT_EQ(instance.item(1).id, 1u);
  EXPECT_DOUBLE_EQ(instance.item(1).size, 0.25);
}

TEST(InstanceTest, FromItemsValidates) {
  std::vector<Item> items{{0, 2.0, 1.0, 0.5}};
  EXPECT_THROW(Instance::from_items(std::move(items)), PreconditionError);
}

TEST(InstanceTest, ArrivalOrderSortsByTimeThenId) {
  Instance instance;
  instance.add(2.0, 3.0, 0.1);  // id 0
  instance.add(1.0, 3.0, 0.1);  // id 1
  instance.add(1.0, 2.0, 0.1);  // id 2 (ties with id 1 on arrival)
  instance.add(0.5, 1.0, 0.1);  // id 3
  const auto order = instance.arrival_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(InstanceTest, PackingPeriodSpansAllItems) {
  Instance instance;
  instance.add(3.0, 5.0, 0.1);
  instance.add(1.0, 2.0, 0.1);
  instance.add(4.0, 9.0, 0.1);
  EXPECT_EQ(instance.packing_period(), (TimeInterval{1.0, 9.0}));
}

TEST(InstanceTest, PackingPeriodOfEmptyThrows) {
  Instance instance;
  EXPECT_THROW((void)instance.packing_period(), PreconditionError);
}

TEST(InstanceTest, AppendReassignsIds) {
  Instance a;
  a.add(0.0, 1.0, 0.5);
  Instance b;
  b.add(2.0, 3.0, 0.25);
  b.add(3.0, 4.0, 0.75);
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.item(1).id, 1u);
  EXPECT_DOUBLE_EQ(a.item(2).size, 0.75);
  EXPECT_EQ(b.size(), 2u);  // source untouched
}

}  // namespace
}  // namespace dbp
