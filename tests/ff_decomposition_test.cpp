// Section 4.3 machinery: decomposition of First Fit traces into usage
// periods, sub-periods, reference periods, and the paper's invariants.
#include "analysis/ff_decomposition.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

struct FfRun {
  Instance instance;
  SimulationResult result;
  FFDecomposition decomposition;
};

FfRun run_ff(Instance instance) {
  FfRun run;
  run.result = simulate(instance, "first-fit", unit_model());
  run.decomposition = decompose_first_fit(instance, run.result);
  run.instance = std::move(instance);
  return run;
}

TEST(FfDecompositionTest, SingleBinHasEmptyLeftPart) {
  Instance instance;
  instance.add(0.0, 4.0, 0.5);
  instance.add(1.0, 3.0, 0.25);
  const FfRun run = run_ff(std::move(instance));
  const FFDecomposition& d = run.decomposition;
  ASSERT_EQ(d.usage.size(), 1u);
  EXPECT_TRUE(d.left_part[0].empty());
  EXPECT_EQ(d.right_part[0], (TimeInterval{0.0, 4.0}));
  EXPECT_TRUE(d.sub_periods.empty());
  EXPECT_DOUBLE_EQ(d.span, 4.0);
  EXPECT_DOUBLE_EQ(d.ff_total, 4.0);
}

TEST(FfDecompositionTest, SecondBinLeftPartEndsAtPriorClose) {
  // Bin 0: [0, 10). Bin 1 opens at 2 (forced by capacity) and outlives
  // bin 0: I_2^L = [2, 10), I_2^R = [10, 12).
  Instance instance;
  instance.add(0.0, 10.0, 0.8);  // bin 0
  instance.add(2.0, 12.0, 0.8);  // bin 1
  const FfRun run = run_ff(std::move(instance));
  const FFDecomposition& d = run.decomposition;
  ASSERT_EQ(d.usage.size(), 2u);
  EXPECT_DOUBLE_EQ(d.latest_prior_close[1], 10.0);
  EXPECT_EQ(d.left_part[1], (TimeInterval{2.0, 10.0}));
  EXPECT_EQ(d.right_part[1], (TimeInterval{10.0, 12.0}));
  // span(R) = sum of right parts (equation 5).
  EXPECT_DOUBLE_EQ(d.span, 10.0 + 2.0);
}

TEST(FfDecompositionTest, LeftPartContainedInPriorUsageIsAllLeft) {
  // Bin 1 opens and closes inside bin 0's usage: I^R empty.
  Instance instance;
  instance.add(0.0, 10.0, 0.8);  // bin 0
  instance.add(2.0, 5.0, 0.8);   // bin 1, nested
  const FfRun run = run_ff(std::move(instance));
  const FFDecomposition& d = run.decomposition;
  EXPECT_EQ(d.left_part[1], (TimeInterval{2.0, 5.0}));
  EXPECT_TRUE(d.right_part[1].empty());
  ASSERT_EQ(d.sub_periods.size(), 1u);
  const SubPeriod& sub = d.sub_periods[0];
  EXPECT_EQ(sub.bin, 1u);
  EXPECT_EQ(sub.index, 1u);
  // f.4: reference point = left endpoint = bin opening.
  EXPECT_DOUBLE_EQ(sub.reference_point, 2.0);
  // Reference bin: the only earlier bin still open at t = 2.
  EXPECT_EQ(sub.reference_bin, 0u);
}

// Two bins kept continuously open by overlapping chains: bin 0 receives a
// 0.45-item every 2 time units (level 0.9 from t = 2 on), so the 0.45-items
// arriving at odd times don't fit bin 0 and sustain bin 1. All interval
// lengths are 4, so mu = 1, Delta = 4, (mu+2)*Delta = 12.
Instance two_chain_instance(int bin0_arrivals, Time bin1_first,
                            int bin1_arrivals) {
  Instance instance;
  for (int i = 0; i < bin0_arrivals; ++i) {
    instance.add(2.0 * i, 2.0 * i + 4.0, 0.45);
  }
  for (int i = 0; i < bin1_arrivals; ++i) {
    instance.add(bin1_first + 2.0 * i, bin1_first + 2.0 * i + 4.0, 0.45);
  }
  return instance;
}

TEST(FfDecompositionTest, LongLeftPartIsSplit) {
  // Bin 0 open [0, 32); bin 1 open [3, 23): I_1^L = [3, 23), length 20 > 12.
  // Split backwards from 23 at 11 => [3,11) (length 8 = 2*Delta, no merge)
  // and [11,23) (length 12).
  const FfRun run = run_ff(two_chain_instance(15, 3.0, 9));
  const FFDecomposition& d = run.decomposition;
  EXPECT_DOUBLE_EQ(d.mu, 1.0);
  EXPECT_DOUBLE_EQ(d.delta, 4.0);
  ASSERT_EQ(d.usage.size(), 2u);
  EXPECT_EQ(d.usage[1], (TimeInterval{3.0, 23.0}));
  EXPECT_EQ(d.left_part[1], (TimeInterval{3.0, 23.0}));
  std::size_t bin1_subs = 0;
  for (const SubPeriod& sub : d.sub_periods) {
    if (sub.bin == 1) ++bin1_subs;
  }
  EXPECT_EQ(bin1_subs, 2u);
  const DecompositionReport report =
      verify_ff_decomposition(run.instance, run.result, d, unit_model());
  EXPECT_TRUE(report.all_ok()) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
}

TEST(FfDecompositionTest, ShortFirstPieceIsMerged) {
  // Bin 1 open [3, 17): length 14 > 12, remainder piece [3,5) is shorter
  // than 2*Delta = 8 => merged into a single 14-long first sub-period.
  const FfRun run = run_ff(two_chain_instance(15, 3.0, 6));
  const FFDecomposition& d = run.decomposition;
  ASSERT_EQ(d.usage.size(), 2u);
  EXPECT_EQ(d.left_part[1], (TimeInterval{3.0, 17.0}));
  std::size_t bin1_subs = 0;
  for (const SubPeriod& sub : d.sub_periods) {
    if (sub.bin == 1) ++bin1_subs;
  }
  EXPECT_EQ(bin1_subs, 1u);  // merged
  // f.1: the merged piece is within (mu+4)*Delta = 20.
  const DecompositionReport report =
      verify_ff_decomposition(run.instance, run.result, d, unit_model());
  EXPECT_TRUE(report.features_ok) << (report.violations.empty()
                                          ? ""
                                          : report.violations.front());
}

TEST(FfDecompositionTest, AggregateIdentities) {
  RandomInstanceConfig config;
  config.item_count = 400;
  config.arrival.rate = 8.0;
  const Instance instance = generate_random_instance(config, 21);
  const FfRun run = run_ff(Instance{instance});
  const FFDecomposition& d = run.decomposition;
  // Equation (4)/(6): FF_total = sum(left) + span.
  EXPECT_NEAR(d.ff_total, d.sum_left_lengths + d.span, 1e-9 * d.ff_total);
  // FF_total from decomposition equals the simulator's accounting (C = 1).
  EXPECT_NEAR(d.ff_total, run.result.total_cost, 1e-9 * d.ff_total);
  // span equals the instance span.
  EXPECT_NEAR(d.span, span_of(instance), 1e-9 * d.span);
}

TEST(FfDecompositionTest, VerifierPassesOnRandomFirstFitTrace) {
  RandomInstanceConfig config;
  config.item_count = 600;
  config.arrival.rate = 10.0;
  config.duration.min_length = 1.0;
  config.duration.max_length = 4.0;
  const Instance instance = generate_random_instance(config, 31);
  const FfRun run = run_ff(Instance{instance});
  const DecompositionReport report = verify_ff_decomposition(
      run.instance, run.result, run.decomposition, unit_model());
  EXPECT_TRUE(report.all_ok()) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
}

TEST(FfDecompositionTest, SmallItemInequalityEight) {
  // All sizes < W/k with k = 4: inequality (8) must hold for every counted
  // reference period.
  RandomInstanceConfig config;
  config.item_count = 600;
  config.arrival.rate = 20.0;
  config.size.kind = SizeModel::Kind::kUniform;
  config.size.min_fraction = 0.01;
  config.size.max_fraction = 0.24;
  const Instance instance = generate_random_instance(config, 41);
  const FfRun run = run_ff(Instance{instance});
  const DecompositionReport report = verify_ff_decomposition(
      run.instance, run.result, run.decomposition, unit_model(), 4.0);
  EXPECT_TRUE(report.all_ok()) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
}

TEST(FfDecompositionTest, CostBoundInequalityTen) {
  RandomInstanceConfig config;
  config.item_count = 500;
  config.arrival.rate = 10.0;
  const Instance instance = generate_random_instance(config, 51);
  const FfRun run = run_ff(Instance{instance});
  EXPECT_LE(run.decomposition.ff_total, run.decomposition.cost_bound(1.0) + 1e-9);
}

TEST(FfDecompositionTest, RejectsMismatchedInputs) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  Instance other;
  other.add(0.0, 1.0, 0.5);
  other.add(0.0, 1.0, 0.25);
  EXPECT_THROW(decompose_first_fit(other, result), PreconditionError);
  EXPECT_THROW(decompose_first_fit(Instance{}, result), PreconditionError);
}

}  // namespace
}  // namespace dbp
