#include "core/interval_set.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

TEST(IntervalSetTest, EmptySet) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.total_length(), 0.0);
  EXPECT_EQ(set.piece_count(), 0u);
  EXPECT_FALSE(set.contains(0.0));
  EXPECT_THROW((void)set.min(), PreconditionError);
  EXPECT_THROW((void)set.max(), PreconditionError);
}

TEST(IntervalSetTest, SingleInterval) {
  IntervalSet set({{1.0, 3.0}});
  EXPECT_DOUBLE_EQ(set.total_length(), 2.0);
  EXPECT_EQ(set.piece_count(), 1u);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 3.0);
}

TEST(IntervalSetTest, DropsEmptyIntervals) {
  IntervalSet set({{1.0, 1.0}, {3.0, 2.0}, {5.0, 6.0}});
  EXPECT_EQ(set.piece_count(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 1.0);
}

TEST(IntervalSetTest, MergesOverlapping) {
  IntervalSet set({{0.0, 2.0}, {1.0, 3.0}, {2.5, 4.0}});
  EXPECT_EQ(set.piece_count(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 4.0);
}

TEST(IntervalSetTest, MergesTouching) {
  IntervalSet set({{0.0, 1.0}, {1.0, 2.0}});
  EXPECT_EQ(set.piece_count(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 2.0);
}

TEST(IntervalSetTest, KeepsDisjointPieces) {
  IntervalSet set({{0.0, 1.0}, {2.0, 3.0}, {5.0, 8.0}});
  EXPECT_EQ(set.piece_count(), 3u);
  EXPECT_DOUBLE_EQ(set.total_length(), 5.0);
}

TEST(IntervalSetTest, UnsortedInputIsNormalized) {
  IntervalSet set({{5.0, 8.0}, {0.0, 1.0}, {2.0, 3.0}});
  ASSERT_EQ(set.piece_count(), 3u);
  EXPECT_DOUBLE_EQ(set.pieces()[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(set.pieces()[2].end, 8.0);
}

TEST(IntervalSetTest, PaperFigure1SpanExample) {
  // Figure 1's shape: overlapping item intervals whose union is shorter
  // than the sum of lengths but longer than any single interval.
  IntervalSet set({{0.0, 3.0}, {2.0, 5.0}, {7.0, 9.0}});
  EXPECT_DOUBLE_EQ(set.total_length(), 7.0);  // [0,5) u [7,9)
  EXPECT_EQ(set.piece_count(), 2u);
}

TEST(IntervalSetTest, ContainsQueriesHalfOpen) {
  IntervalSet set({{0.0, 1.0}, {2.0, 3.0}});
  EXPECT_TRUE(set.contains(0.0));
  EXPECT_TRUE(set.contains(0.5));
  EXPECT_FALSE(set.contains(1.0));
  EXPECT_FALSE(set.contains(1.5));
  EXPECT_TRUE(set.contains(2.0));
  EXPECT_FALSE(set.contains(3.0));
}

TEST(IntervalSetTest, InsertRenormalizes) {
  IntervalSet set({{0.0, 1.0}, {3.0, 4.0}});
  set.insert({0.5, 3.5});
  EXPECT_EQ(set.piece_count(), 1u);
  EXPECT_DOUBLE_EQ(set.total_length(), 4.0);
  set.insert({10.0, 10.0});  // empty: no-op
  EXPECT_EQ(set.piece_count(), 1u);
}

TEST(IntervalSetTest, LengthWithinWindow) {
  IntervalSet set({{0.0, 2.0}, {4.0, 6.0}});
  EXPECT_DOUBLE_EQ(set.length_within({0.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(set.length_within({1.0, 5.0}), 2.0);
  EXPECT_DOUBLE_EQ(set.length_within({2.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(set.length_within({5.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(set.length_within({-10.0, 10.0}), 4.0);
}

TEST(IntervalSetTest, EqualityComparesNormalizedForm) {
  IntervalSet a({{0.0, 1.0}, {1.0, 2.0}});
  IntervalSet b({{0.0, 2.0}});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dbp
