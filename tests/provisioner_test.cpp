#include "gaming/provisioner.hpp"

#include <gtest/gtest.h>

#include "algo/factory.hpp"
#include "core/error.hpp"
#include "sim/fault_sim.hpp"
#include "workload/cloud_gaming.hpp"

namespace dbp {
namespace {

ServerSpec spec() { return ServerSpec{1.0, 6.0}; }  // $6/h = $0.1/min

/// Three sessions needing three servers at t = 0, 10, 20; one more sharing.
Instance staggered_instance() {
  Instance instance;
  instance.add(0.0, 60.0, 0.9);   // server 0 at t=0
  instance.add(10.0, 50.0, 0.9);  // server 1 at t=10
  instance.add(20.0, 40.0, 0.9);  // server 2 at t=20
  instance.add(21.0, 30.0, 0.05); // shares server 0 (first fit)
  return instance;
}

SimulationResult run_ff(const Instance& instance) {
  return simulate(instance, "first-fit", spec().to_cost_model());
}

TEST(ProvisionerTest, OnDemandEveryOpenIsAColdStart) {
  const Instance instance = staggered_instance();
  const SimulationResult result = run_ff(instance);
  const ProvisioningReport report = analyze_provisioning(
      instance, result, spec(), ProvisioningPolicy{3.0, 0});
  EXPECT_EQ(report.boots, 3u);        // one per opened server
  EXPECT_EQ(report.cold_starts, 3u);
  EXPECT_DOUBLE_EQ(report.wait_minutes.max, 3.0);
  // Session 3 shares an already-open server: zero wait.
  EXPECT_EQ(report.wait_minutes.count, instance.size());
  EXPECT_DOUBLE_EQ(report.warm_pool_dollars, 0.0);
  EXPECT_GT(report.rental_dollars, 0.0);
}

TEST(ProvisionerTest, BigEnoughWarmPoolEliminatesAllWaits) {
  const Instance instance = staggered_instance();
  const SimulationResult result = run_ff(instance);
  const ProvisioningReport report = analyze_provisioning(
      instance, result, spec(), ProvisioningPolicy{3.0, 2});
  // Opens are 10 minutes apart, boot takes 3: the replacement always lands
  // before the next open, so 2 spares suffice — in fact 1 would.
  EXPECT_EQ(report.cold_starts, 0u);
  EXPECT_DOUBLE_EQ(report.wait_minutes.max, 0.0);
  // Pool billing: 2 spares x 60 minutes x $0.1 = $12.
  EXPECT_DOUBLE_EQ(report.warm_pool_dollars, 12.0);
  // Boots: 2 initial + 3 replacements.
  EXPECT_EQ(report.boots, 5u);
}

TEST(ProvisionerTest, InFlightReplacementShortensWait) {
  // Two servers open 1 minute apart with a single spare and 3-minute boot:
  // the second open grabs the in-flight replacement and waits 2 minutes.
  Instance instance;
  instance.add(0.0, 30.0, 0.9);
  instance.add(1.0, 30.0, 0.9);
  const SimulationResult result = run_ff(instance);
  const ProvisioningReport report = analyze_provisioning(
      instance, result, spec(), ProvisioningPolicy{3.0, 1});
  EXPECT_EQ(report.cold_starts, 1u);
  EXPECT_DOUBLE_EQ(report.wait_minutes.max, 2.0);
}

TEST(ProvisionerTest, ZeroBootTimeMeansNoWaits) {
  const Instance instance = staggered_instance();
  const SimulationResult result = run_ff(instance);
  const ProvisioningReport report = analyze_provisioning(
      instance, result, spec(), ProvisioningPolicy{0.0, 0});
  EXPECT_DOUBLE_EQ(report.wait_minutes.max, 0.0);
  EXPECT_EQ(report.cold_starts, 0u);
}

TEST(ProvisionerTest, RentalMatchesDispatcherBill) {
  CloudGamingConfig config;
  config.horizon_hours = 4.0;
  config.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 5);
  const SimulationResult result = run_ff(trace.instance);
  const ProvisioningReport report = analyze_provisioning(
      trace.instance, result, spec(), ProvisioningPolicy{3.0, 0});
  EXPECT_NEAR(report.rental_dollars,
              result.total_cost_from_bins / spec().to_cost_model().cost_rate *
                  spec().price_per_hour / 60.0,
              1e-9 * report.rental_dollars);
}

TEST(ProvisionerTest, BiggerPoolTradesDollarsForWaits) {
  CloudGamingConfig config;
  config.horizon_hours = 12.0;
  config.peak_arrivals_per_minute = 2.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 77);
  const SimulationResult result = run_ff(trace.instance);
  double previous_wait = 1e18;
  double previous_cost = 0.0;
  for (const std::size_t warm : {0u, 2u, 6u}) {
    const ProvisioningReport report = analyze_provisioning(
        trace.instance, result, spec(), ProvisioningPolicy{3.0, warm});
    EXPECT_LE(report.wait_minutes.mean, previous_wait);
    EXPECT_GE(report.total_dollars(), previous_cost);
    previous_wait = report.wait_minutes.mean;
    previous_cost = report.warm_pool_dollars;  // monotone in warm target
  }
}

// Regression (PR 8 satellite): a faulted run's crash re-dispatch closes a
// server and re-opens a fresh one whose residents all *arrived before* the
// open. No item attributes that open, so the trigger stays at the sentinel
// (`instance.size()`); charging the wait to `waits[sentinel]` was a heap
// write one past the end. The open must still count as a cold start.
TEST(ProvisionerTest, CloseAndReopenCrashTraceStaysInBounds) {
  Instance instance;
  instance.add(0.0, 10.0, 0.6);  // server 0
  instance.add(1.0, 10.0, 0.6);  // server 1 (0.6 + 0.6 > 1.0)
  auto packer = make_packer("first-fit", spec().to_cost_model());
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{2.0, CrashTarget::kFullest});
  const SimulationResult result = simulate_faulted(instance, *packer, plan);
  // The crash (tie -> lowest id, bin 0) re-dispatches item 0 onto a fresh
  // server at t=2 with its original arrival time 0 < opened 2.
  ASSERT_EQ(result.bins_opened, 3u);
  const ProvisioningReport report = analyze_provisioning(
      instance, result, spec(), ProvisioningPolicy{3.0, 0});
  EXPECT_EQ(report.boots, 3u);
  EXPECT_EQ(report.cold_starts, 3u);
  // Both *sessions* get a wait slot; the sentinel open charges nobody.
  EXPECT_EQ(report.wait_minutes.count, instance.size());
  EXPECT_DOUBLE_EQ(report.wait_minutes.max, 3.0);
}

// Regression: assignment bin ids pointing past the usage records (sparse or
// mismatched results) used to index out of bounds; now a typed precondition.
TEST(ProvisionerTest, SparseAssignmentIsRejectedNotIndexed) {
  Instance instance;
  instance.add(0.0, 10.0, 0.5);
  SimulationResult result;
  result.assignment = {BinId{3}};  // no usage record for bin 3
  result.bin_usage.push_back(BinUsageRecord{BinId{0}, 0.0, 10.0});
  result.bins_opened = 1;
  result.packing_period = TimeInterval{0.0, 10.0};
  EXPECT_THROW(
      (void)analyze_provisioning(instance, result, spec(), ProvisioningPolicy{}),
      PreconditionError);
  // Inconsistent bookkeeping (opened count vs records) is rejected too.
  result.assignment = {BinId{0}};
  result.bins_opened = 2;
  EXPECT_THROW(
      (void)analyze_provisioning(instance, result, spec(), ProvisioningPolicy{}),
      PreconditionError);
}

TEST(ProvisionerTest, Validation) {
  const Instance instance = staggered_instance();
  const SimulationResult result = run_ff(instance);
  ProvisioningPolicy bad;
  bad.boot_minutes = -1.0;
  EXPECT_THROW((void)analyze_provisioning(instance, result, spec(), bad),
               PreconditionError);
  Instance other;
  other.add(0.0, 1.0, 0.5);
  EXPECT_THROW((void)analyze_provisioning(other, result, spec(), ProvisioningPolicy{}),
               PreconditionError);
}

}  // namespace
}  // namespace dbp
