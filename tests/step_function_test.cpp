#include "core/step_function.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

TEST(StepFunctionTest, EmptyFunction) {
  StepFunction f;
  f.finalize();
  EXPECT_EQ(f.value_at(0.0), 0);
  EXPECT_EQ(f.max_value(), 0);
  EXPECT_DOUBLE_EQ(f.integral(), 0.0);
  EXPECT_DOUBLE_EQ(f.measure_positive(), 0.0);
}

TEST(StepFunctionTest, QueriesBeforeFinalizeThrow) {
  StepFunction f;
  f.add_delta(0.0, 1);
  EXPECT_THROW((void)f.value_at(0.0), PreconditionError);
  EXPECT_THROW((void)f.integral(), PreconditionError);
  EXPECT_THROW((void)f.breakpoints(), PreconditionError);
}

TEST(StepFunctionTest, SingleInterval) {
  StepFunction f;
  f.add_interval({1.0, 3.0});
  f.finalize();
  EXPECT_EQ(f.value_at(0.5), 0);
  EXPECT_EQ(f.value_at(1.0), 1);
  EXPECT_EQ(f.value_at(2.9), 1);
  EXPECT_EQ(f.value_at(3.0), 0);
  EXPECT_DOUBLE_EQ(f.integral(), 2.0);
  EXPECT_EQ(f.max_value(), 1);
}

TEST(StepFunctionTest, OverlappingIntervalsStack) {
  StepFunction f;
  f.add_interval({0.0, 4.0});
  f.add_interval({1.0, 3.0});
  f.add_interval({2.0, 5.0});
  f.finalize();
  EXPECT_EQ(f.value_at(0.5), 1);
  EXPECT_EQ(f.value_at(1.5), 2);
  EXPECT_EQ(f.value_at(2.5), 3);
  EXPECT_EQ(f.value_at(4.5), 1);
  EXPECT_EQ(f.max_value(), 3);
  EXPECT_DOUBLE_EQ(f.integral(), 4.0 + 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(f.measure_positive(), 5.0);
}

TEST(StepFunctionTest, CoalescesSimultaneousDeltas) {
  StepFunction f;
  f.add_delta(1.0, 1);
  f.add_delta(1.0, 1);
  f.add_delta(1.0, -1);
  f.add_delta(2.0, -1);
  f.finalize();
  ASSERT_EQ(f.breakpoints().size(), 2u);
  EXPECT_EQ(f.breakpoints()[0].value, 1);
  EXPECT_EQ(f.breakpoints()[1].value, 0);
}

TEST(StepFunctionTest, CancellingDeltasLeaveNoBreakpoint) {
  StepFunction f;
  f.add_delta(1.0, 2);
  f.add_delta(1.0, -2);
  f.add_interval({3.0, 4.0});
  f.finalize();
  ASSERT_EQ(f.breakpoints().size(), 2u);
  EXPECT_DOUBLE_EQ(f.breakpoints()[0].time, 3.0);
}

TEST(StepFunctionTest, NegativePrefixThrowsOnFinalize) {
  StepFunction f;
  f.add_delta(0.0, -1);
  f.add_delta(1.0, 1);
  EXPECT_THROW(f.finalize(), InvariantError);
}

TEST(StepFunctionTest, UnboundedTailRejectsIntegral) {
  StepFunction f;
  f.add_delta(0.0, 1);  // never returns to zero
  f.finalize();
  EXPECT_THROW((void)f.integral(), PreconditionError);
}

TEST(StepFunctionTest, EmptyIntervalIgnored) {
  StepFunction f;
  f.add_interval({2.0, 2.0});
  f.finalize();
  EXPECT_TRUE(f.breakpoints().empty());
}

TEST(StepFunctionTest, IntegralOfCustomFunction) {
  StepFunction f;
  f.add_interval({0.0, 2.0});
  f.add_interval({1.0, 2.0});
  f.finalize();
  // g(v) = v^2: 1 over [0,1), 4 over [1,2).
  const double result =
      f.integral_of([](std::int64_t v) { return static_cast<double>(v * v); });
  EXPECT_DOUBLE_EQ(result, 1.0 + 4.0);
}

TEST(StepFunctionTest, FinalizeIsIdempotentAndReopenable) {
  StepFunction f;
  f.add_interval({0.0, 1.0});
  f.finalize();
  f.finalize();
  EXPECT_DOUBLE_EQ(f.integral(), 1.0);
  f.add_interval({2.0, 4.0});  // reopens the build phase
  EXPECT_THROW((void)f.integral(), PreconditionError);
  f.finalize();
  EXPECT_DOUBLE_EQ(f.integral(), 3.0);
}

TEST(StepFunctionTest, NonFiniteTimeRejected) {
  StepFunction f;
  EXPECT_THROW(f.add_delta(std::numeric_limits<double>::quiet_NaN(), 1),
               PreconditionError);
}

}  // namespace
}  // namespace dbp
