#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/error.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

TEST(TraceIoTest, RoundTripPreservesItemsExactly) {
  RandomInstanceConfig config;
  config.item_count = 200;
  const Instance original = generate_random_instance(config, 99);

  std::stringstream stream;
  write_instance_csv(original, stream);
  const Instance loaded = read_instance_csv(stream);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.items()[i], original.items()[i]) << "row " << i;
  }
}

TEST(TraceIoTest, WritesHeader) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  std::stringstream stream;
  write_instance_csv(instance, stream);
  std::string first_line;
  std::getline(stream, first_line);
  EXPECT_EQ(first_line, "id,arrival,departure,size");
}

TEST(TraceIoTest, EmptyInstanceRoundTrips) {
  std::stringstream stream;
  write_instance_csv(Instance{}, stream);
  EXPECT_TRUE(read_instance_csv(stream).empty());
}

TEST(TraceIoTest, RejectsMissingHeader) {
  std::stringstream stream("0,1,2,0.5\n");
  EXPECT_THROW((void)read_instance_csv(stream), PreconditionError);
}

TEST(TraceIoTest, RejectsEmptyStream) {
  std::stringstream stream("");
  EXPECT_THROW((void)read_instance_csv(stream), PreconditionError);
}

TEST(TraceIoTest, RejectsWrongFieldCount) {
  std::stringstream stream("id,arrival,departure,size\n0,1,2\n");
  EXPECT_THROW((void)read_instance_csv(stream), PreconditionError);
}

TEST(TraceIoTest, RejectsMalformedNumbers) {
  std::stringstream stream("id,arrival,departure,size\n0,zero,2,0.5\n");
  EXPECT_THROW((void)read_instance_csv(stream), PreconditionError);
}

TEST(TraceIoTest, RejectsInvalidItems) {
  // departure <= arrival fails Item::validate via Instance::from_items.
  std::stringstream stream("id,arrival,departure,size\n0,5,2,0.5\n");
  EXPECT_THROW((void)read_instance_csv(stream), PreconditionError);
}

TEST(TraceIoTest, SkipsBlankLines) {
  std::stringstream stream("id,arrival,departure,size\n0,0,1,0.5\n\n1,1,2,0.25\n");
  const Instance instance = read_instance_csv(stream);
  EXPECT_EQ(instance.size(), 2u);
}

TEST(TraceIoTest, IdsReassignedDensely) {
  std::stringstream stream("id,arrival,departure,size\n42,0,1,0.5\n99,1,2,0.25\n");
  const Instance instance = read_instance_csv(stream);
  EXPECT_EQ(instance.item(0).id, 0u);
  EXPECT_EQ(instance.item(1).id, 1u);
}

TEST(TraceIoTest, AcceptsCrlfLineEndings) {
  // Windows-exported traces terminate every line with \r\n.
  std::stringstream stream(
      "id,arrival,departure,size\r\n0,0,1,0.5\r\n1,1,2,0.25\r\n");
  const Instance instance = read_instance_csv(stream);
  ASSERT_EQ(instance.size(), 2u);
  EXPECT_DOUBLE_EQ(instance.item(1).size, 0.25);
}

TEST(TraceIoTest, SkipsTrailingBlankAndWhitespaceLines) {
  std::stringstream stream(
      "id,arrival,departure,size\n0,0,1,0.5\n   \n\t\n\n  \t \n");
  const Instance instance = read_instance_csv(stream);
  EXPECT_EQ(instance.size(), 1u);
}

TEST(TraceIoTest, SkipsDuplicateHeaderRows) {
  // Concatenated exports repeat the header mid-file.
  std::stringstream stream(
      "id,arrival,departure,size\n0,0,1,0.5\n"
      "id,arrival,departure,size\n1,1,2,0.25\n");
  const Instance instance = read_instance_csv(stream);
  ASSERT_EQ(instance.size(), 2u);
}

TEST(TraceIoTest, RejectsNaNFieldWithLineNumber) {
  std::stringstream stream("id,arrival,departure,size\n0,0,1,0.5\n1,1,nan,0.25\n");
  try {
    (void)read_instance_csv(stream);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(TraceIoTest, RejectsInfFieldWithLineNumber) {
  std::stringstream stream("id,arrival,departure,size\n0,0,inf,0.5\n");
  try {
    (void)read_instance_csv(stream);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  Instance instance;
  instance.add(0.25, 1.75, 0.125);
  const std::string path = testing::TempDir() + "/dbp_trace_io_test.csv";
  write_instance_csv(instance, path);
  const Instance loaded = read_instance_csv(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.items()[0], instance.items()[0]);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_instance_csv(std::string("/nonexistent/path.csv")),
               PreconditionError);
}

}  // namespace
}  // namespace dbp
