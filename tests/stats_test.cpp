#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace dbp {
namespace {

TEST(StatsTest, SummaryOfConstantSample) {
  const std::vector<double> values(5, 3.0);
  const SummaryStats stats = summarize(values);
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 3.0);
  EXPECT_DOUBLE_EQ(stats.max, 3.0);
  EXPECT_DOUBLE_EQ(stats.p50, 3.0);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  const SummaryStats stats = summarize(values);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_NEAR(stats.stddev, 1.2909944487358056, 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.p50, 2.5);
}

TEST(StatsTest, SingleElement) {
  const std::vector<double> values{7.0};
  const SummaryStats stats = summarize(values);
  EXPECT_DOUBLE_EQ(stats.mean, 7.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.p95, 7.0);
}

TEST(StatsTest, EmptySampleThrows) {
  EXPECT_THROW((void)summarize({}), PreconditionError);
  EXPECT_THROW((void)percentile({}, 0.5), PreconditionError);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> values{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 3.0);
}

TEST(PercentileTest, LinearInterpolation) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(values, 0.75), 7.5);
}

TEST(PercentileTest, RejectsBadQuantile) {
  const std::vector<double> values{1.0};
  EXPECT_THROW((void)percentile(values, -0.1), PreconditionError);
  EXPECT_THROW((void)percentile(values, 1.1), PreconditionError);
}

TEST(PercentileTest, InputOrderIrrelevant) {
  const std::vector<double> a{3.0, 1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(a, 0.5), percentile(b, 0.5));
}

}  // namespace
}  // namespace dbp
