// Tracing must be observationally free: a run with a tracer and metrics
// registry installed produces bit-identical results to an untraced run, and
// the trace itself (timings stripped) is byte-identical across worker
// counts. These tests are the enforcement for the "read-only
// instrumentation" contract in obs/run_tracer.hpp.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/parallel_map.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "obs/run_tracer.hpp"
#include "opt/opt_total.hpp"
#include "sim/fault_sim.hpp"
#include "sim/simulator.hpp"
#include "workload/fault_schedule.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

Instance make_instance(std::size_t items, std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 8.0;
  config.duration.min_length = 0.5;
  config.duration.max_length = 4.0;
  return generate_random_instance(config, seed);
}

void expect_bit_identical(const SimulationResult& traced,
                          const SimulationResult& untraced) {
  EXPECT_EQ(traced.algorithm, untraced.algorithm);
  // Exact equality on purpose: tracing may not perturb a single bit.
  EXPECT_EQ(traced.total_cost, untraced.total_cost);
  EXPECT_EQ(traced.total_cost_from_bins, untraced.total_cost_from_bins);
  EXPECT_EQ(traced.max_open_bins, untraced.max_open_bins);
  EXPECT_EQ(traced.bins_opened, untraced.bins_opened);
  EXPECT_EQ(traced.assignment, untraced.assignment);
  ASSERT_EQ(traced.bin_usage.size(), untraced.bin_usage.size());
  for (std::size_t i = 0; i < traced.bin_usage.size(); ++i) {
    EXPECT_EQ(traced.bin_usage[i].id, untraced.bin_usage[i].id);
    EXPECT_EQ(traced.bin_usage[i].opened, untraced.bin_usage[i].opened);
    EXPECT_EQ(traced.bin_usage[i].closed, untraced.bin_usage[i].closed);
  }
  EXPECT_EQ(traced.open_bins_over_time.breakpoints(),
            untraced.open_bins_over_time.breakpoints());
}

TEST(TraceNeutralityTest, SimulateIsBitIdenticalWithTracing) {
  const Instance instance = make_instance(300, 11);
  const CostModel model{1.0, 1.0, 1e-9};
  for (const char* algorithm : {"first-fit", "best-fit", "modified-first-fit"}) {
    const SimulationResult untraced = simulate(instance, algorithm, model);
    obs::RunTracer tracer;
    obs::MetricsRegistry registry;
    SimulationResult traced;
    {
      const obs::ObsScope scope(&tracer, &registry);
      traced = simulate(instance, algorithm, model);
    }
    expect_bit_identical(traced, untraced);
    // And the instrumentation actually observed the run.
    EXPECT_GT(tracer.total_recorded(), 0u);
    EXPECT_EQ(registry.counter_value("packer.arrivals"), instance.size());
    EXPECT_EQ(registry.counter_value("packer.departures"), instance.size());
    EXPECT_EQ(registry.counter_value("bin_manager.bins_opened"),
              traced.bins_opened);
  }
}

TEST(TraceNeutralityTest, FaultedSimulateIsBitIdenticalWithTracing) {
  const Instance instance = make_instance(250, 23);
  const CostModel model{1.0, 1.0, 1e-9};
  const FaultPlan plan = make_poisson_fault_plan(
      instance.packing_period(), 0.4, 0.1, CrashTarget::kFullest, 7);

  const FaultSimulationResult untraced =
      simulate_with_faults(instance, "first-fit", model, plan);
  obs::RunTracer tracer;
  obs::MetricsRegistry registry;
  FaultSimulationResult traced;
  {
    const obs::ObsScope scope(&tracer, &registry);
    traced = simulate_with_faults(instance, "first-fit", model, plan);
  }
  expect_bit_identical(traced.faulted, untraced.faulted);
  expect_bit_identical(traced.baseline, untraced.baseline);
  EXPECT_EQ(traced.cost_inflation_ratio, untraced.cost_inflation_ratio);
  EXPECT_EQ(traced.stats.crashes_landed, untraced.stats.crashes_landed);
  EXPECT_EQ(traced.stats.sessions_redispatched,
            untraced.stats.sessions_redispatched);
  EXPECT_EQ(registry.counter_value("fault.crashes_landed"),
            traced.stats.crashes_landed);
}

TEST(TraceNeutralityTest, OptTotalIsBitIdenticalWithTracing) {
  const Instance instance = make_instance(200, 5);
  const CostModel model{1.0, 1.0, 1e-9};
  OptTotalOptions options;
  options.bin_count.exact.node_budget = 20'000;

  const OptTotalResult untraced = estimate_opt_total(instance, model, options);
  obs::RunTracer tracer;
  obs::MetricsRegistry registry;
  OptTotalResult traced;
  {
    const obs::ObsScope scope(&tracer, &registry);
    traced = estimate_opt_total(instance, model, options);
  }
  EXPECT_EQ(traced.lower_cost, untraced.lower_cost);
  EXPECT_EQ(traced.upper_cost, untraced.upper_cost);
  EXPECT_EQ(traced.exact, untraced.exact);
  EXPECT_EQ(traced.segments, untraced.segments);
  EXPECT_EQ(traced.distinct_snapshots, untraced.distinct_snapshots);
  EXPECT_EQ(traced.dedup_hits, untraced.dedup_hits);
  // Three phase records (sweep, evaluate, combine) and per-phase timers.
  const auto sweep = registry.timer_stats("opt_total.sweep");
  ASSERT_TRUE(sweep.has_value());
  EXPECT_EQ(sweep->count, 1u);
  EXPECT_TRUE(registry.timer_stats("opt_total.evaluate").has_value());
  EXPECT_TRUE(registry.timer_stats("opt_total.combine").has_value());
}

/// Exports one traced full pipeline (packing runs + estimator) with timing
/// fields stripped.
std::string traced_pipeline_jsonl(const Instance& instance,
                                  const CostModel& model, int threads) {
  const int saved = parallel_worker_count();
  set_parallel_worker_count(threads);
  obs::RunTracer tracer;
  {
    const obs::ObsScope scope(&tracer, nullptr);
    (void)simulate(instance, "first-fit", model);
    OptTotalOptions options;
    options.bin_count.exact.node_budget = 20'000;
    (void)estimate_opt_total(instance, model, options);
  }
  set_parallel_worker_count(saved);
  std::ostringstream out;
  tracer.export_jsonl(out, /*include_timings=*/false);
  return out.str();
}

TEST(TraceDeterminismTest, IdenticalJsonlAcrossWorkerCounts) {
  const Instance instance = make_instance(200, 31);
  const CostModel model{1.0, 1.0, 1e-9};
  const std::string one_worker = traced_pipeline_jsonl(instance, model, 1);
  const std::string four_workers = traced_pipeline_jsonl(instance, model, 4);
  EXPECT_EQ(one_worker, four_workers);
}

TEST(TraceDeterminismTest, RepeatedRunsProduceIdenticalJsonl) {
  const Instance instance = make_instance(150, 13);
  const CostModel model{1.0, 1.0, 1e-9};
  const std::string first = traced_pipeline_jsonl(instance, model, 2);
  const std::string second = traced_pipeline_jsonl(instance, model, 2);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dbp
