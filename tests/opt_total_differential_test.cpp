// Differential tests for the fast OPT_total pipeline.
//
// estimate_opt_total (RLE snapshots, dedup, parallel segment evaluation)
// must reproduce the reference estimator bit for bit — not approximately:
// the fast path is engineered to replay the reference's floating-point
// operation sequence exactly, and these tests are the contract.
#include "opt/opt_total.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/parallel_map.hpp"
#include "exec/worker_budget.hpp"
#include "opt/opt_total_reference.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/adversary_bestfit.hpp"
#include "workload/random_instance.hpp"
#include "workload/transform.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

/// Bit-identical comparison: EXPECT_EQ on doubles is exact, which is the
/// point — the fast path replays the reference's FP operation sequence.
void expect_bit_identical(const OptTotalResult& fast,
                          const OptTotalResult& reference) {
  EXPECT_EQ(fast.lower_cost, reference.lower_cost);
  EXPECT_EQ(fast.upper_cost, reference.upper_cost);
  EXPECT_EQ(fast.exact, reference.exact);
  EXPECT_EQ(fast.segments, reference.segments);
  EXPECT_EQ(fast.exact_segments, reference.exact_segments);
  EXPECT_EQ(fast.distinct_snapshots, reference.distinct_snapshots);
  EXPECT_EQ(fast.dedup_hits, reference.dedup_hits);
  EXPECT_EQ(fast.max_bins_lower, reference.max_bins_lower);
  EXPECT_EQ(fast.max_bins_upper, reference.max_bins_upper);
  EXPECT_EQ(fast.closed_form.demand_lower, reference.closed_form.demand_lower);
  EXPECT_EQ(fast.closed_form.span_lower, reference.closed_form.span_lower);
}

/// Every execution policy must reproduce the reference bit for bit — the
/// policy only chooses *where* snapshots are evaluated, never *what* is
/// computed.
void expect_differential_match(const Instance& instance,
                               const OptTotalOptions& options = {}) {
  const OptTotalResult reference =
      estimate_opt_total_reference(instance, unit_model(), options);
  for (const exec::ExecutionPolicy policy :
       {exec::ExecutionPolicy::kSequential, exec::ExecutionPolicy::kParallel,
        exec::ExecutionPolicy::kAdaptive}) {
    OptTotalOptions policy_options = options;
    policy_options.policy = policy;
    const OptTotalResult result =
        estimate_opt_total(instance, unit_model(), policy_options);
    expect_bit_identical(result, reference);
  }
}

Instance uniform_instance(std::size_t items, std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.5;
  return generate_random_instance(config, seed);
}

Instance dyadic_burst_instance(std::size_t items, std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.kind = ArrivalModel::Kind::kBursts;
  config.arrival.burst_size = 16;
  config.arrival.burst_gap = 0.5;
  config.duration.max_length = 6.0;
  config.size.kind = SizeModel::Kind::kDyadic;
  config.size.min_exponent = 1;
  config.size.max_exponent = 5;
  return generate_random_instance(config, seed);
}

/// Emulates a crash at time `t`: every item alive across `t` departs and
/// immediately re-arrives (the fault-recovery layer's re-dispatch shape).
/// Doubles the event count at `t` and creates revisited snapshots.
Instance split_at(const Instance& instance, Time t) {
  Instance out;
  out.reserve(instance.size());
  for (const Item& item : instance.items()) {
    if (item.arrival < t && t < item.departure) {
      out.add(item.arrival, t, item.size);
      out.add(t, item.departure, item.size);
    } else {
      out.add(item.arrival, item.departure, item.size);
    }
  }
  return out;
}

TEST(OptTotalDifferentialTest, SeededRandomUniform) {
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    expect_differential_match(uniform_instance(400, seed));
  }
}

TEST(OptTotalDifferentialTest, DyadicBurstsBatchedEqualTimes) {
  // Burst arrivals exercise the batched-event path; dyadic sizes compress
  // heavily, so this is also the workload where snapshot dedup fires.
  const Instance instance = dyadic_burst_instance(600, 3);
  const OptTotalResult fast = estimate_opt_total(instance, unit_model());
  EXPECT_GT(fast.dedup_hits, 0u);
  expect_differential_match(instance);
}

TEST(OptTotalDifferentialTest, AnyFitAdversaryTheorem1) {
  AnyFitAdversaryConfig config;
  config.k = 8;
  config.mu = 4.0;
  expect_differential_match(build_anyfit_adversary(config).instance);
}

TEST(OptTotalDifferentialTest, BestFitAdversaryTheorem2) {
  BestFitAdversaryConfig config;
  config.k = 4;
  config.mu = 4.0;
  expect_differential_match(build_bestfit_adversary(config).instance);
}

TEST(OptTotalDifferentialTest, ChaosRecoveredInstances) {
  const Instance base = uniform_instance(300, 11);
  const TimeInterval period = base.packing_period();
  const Time mid = 0.5 * (period.begin + period.end);
  const Instance crashed = split_at(split_at(base, mid), 0.75 * period.end);
  expect_differential_match(crashed);
  expect_differential_match(reverse_time(crashed));
  expect_differential_match(
      overlay(crashed, scale_time(base, 1.0, 0.25 * period.end)));
}

TEST(OptTotalDifferentialTest, WithoutExactSolver) {
  OptTotalOptions options;
  options.bin_count.use_exact_solver = false;
  expect_differential_match(uniform_instance(400, 5), options);
}

TEST(OptTotalDifferentialTest, DeterministicAcrossWorkerCounts) {
  const Instance instance = dyadic_burst_instance(500, 21);
  set_parallel_worker_count(1);
  const OptTotalResult one = estimate_opt_total(instance, unit_model());
  set_parallel_worker_count(4);
  const OptTotalResult four = estimate_opt_total(instance, unit_model());
  set_parallel_worker_count(0);  // restore the runtime default
  expect_bit_identical(four, one);
}

// The full cross product the acceptance gate names: every ExecutionPolicy
// under worker budgets {1, 2, 8} reproduces the reference bit for bit, on
// both a uniform and a dedup-heavy workload.
TEST(OptTotalDifferentialTest, PolicyTimesThreadsCrossProduct) {
  const Instance instances[] = {uniform_instance(400, 31),
                                dyadic_burst_instance(400, 31)};
  for (const Instance& instance : instances) {
    const OptTotalResult reference =
        estimate_opt_total_reference(instance, unit_model());
    for (const int threads : {1, 2, 8}) {
      exec::WorkerBudget::set(threads);
      for (const exec::ExecutionPolicy policy :
           {exec::ExecutionPolicy::kSequential,
            exec::ExecutionPolicy::kParallel,
            exec::ExecutionPolicy::kAdaptive}) {
        OptTotalOptions options;
        options.policy = policy;
        const OptTotalResult result =
            estimate_opt_total(instance, unit_model(), options);
        expect_bit_identical(result, reference);
        // The budget caps what the estimator may claim to have used.
        EXPECT_LE(result.evaluate_workers, std::max(threads, 1));
      }
    }
    exec::WorkerBudget::set(0);  // restore the runtime default
  }
}

TEST(OptTotalDifferentialTest, SharedOracleHitsAcrossCalls) {
  const Instance instance = dyadic_burst_instance(400, 13);
  BinCountOracle oracle(unit_model());
  OptTotalOptions options;
  options.oracle = &oracle;
  const OptTotalResult first = estimate_opt_total(instance, unit_model(), options);
  EXPECT_EQ(first.oracle_hits, 0u);
  EXPECT_EQ(first.oracle_misses, first.distinct_snapshots);
  const OptTotalResult second = estimate_opt_total(instance, unit_model(), options);
  EXPECT_EQ(second.oracle_hits, second.distinct_snapshots);
  EXPECT_EQ(second.oracle_misses, 0u);
  expect_bit_identical(second, first);
}

TEST(OptTotalDifferentialTest, ReferenceCountersMatchFastPath) {
  const Instance instance = dyadic_burst_instance(300, 2);
  const OptTotalResult reference =
      estimate_opt_total_reference(instance, unit_model());
  EXPECT_EQ(reference.oracle_misses, reference.distinct_snapshots);
  EXPECT_EQ(reference.dedup_hits,
            reference.segments - reference.distinct_snapshots);
}

}  // namespace
}  // namespace dbp
