// Metamorphic invariances of every packing algorithm: transformations of
// the workload with provably predictable effects on the packing.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"
#include "workload/transform.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

Instance sample(std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = 300;
  config.arrival.rate = 8.0;
  config.duration.max_length = 5.0;
  config.size.min_fraction = 0.05;
  config.size.max_fraction = 0.8;
  return generate_random_instance(config, seed);
}

using Cell = std::tuple<std::string, std::uint64_t>;

class AlgorithmMetamorphicTest : public ::testing::TestWithParam<Cell> {
 protected:
  PackerOptions options() const {
    PackerOptions options;
    options.known_mu = 5.0;
    options.seed = 99;  // fixed so random-fit replays identically
    return options;
  }
};

TEST_P(AlgorithmMetamorphicTest, TimeScalingPreservesAssignmentScalesCost) {
  const auto [name, seed] = GetParam();
  const Instance base = sample(seed);
  const Instance scaled = scale_time(base, 3.5, -20.0);
  const SimulationResult a = simulate(base, name, unit_model(), options());
  const SimulationResult b = simulate(scaled, name, unit_model(), options());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_NEAR(b.total_cost, 3.5 * a.total_cost, 1e-9 * b.total_cost);
  EXPECT_EQ(a.max_open_bins, b.max_open_bins);
}

TEST_P(AlgorithmMetamorphicTest, JointSizeCapacityScalingPreservesEverything) {
  const auto [name, seed] = GetParam();
  const Instance base = sample(seed);
  const Instance scaled = scale_sizes(base, 8.0);
  CostModel big = unit_model();
  big.bin_capacity = 8.0;
  big.fit_tolerance = 8e-9;
  const SimulationResult a = simulate(base, name, unit_model(), options());
  const SimulationResult b = simulate(scaled, name, big, options());
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_NEAR(b.total_cost, a.total_cost, 1e-9 * a.total_cost);
}

TEST_P(AlgorithmMetamorphicTest, DisjointConcatenationIsAdditive) {
  const auto [name, seed] = GetParam();
  const Instance first = sample(seed);
  const Instance second = sample(seed + 1000);
  const Instance joined = concatenate(first, second, 2.0);
  const SimulationResult a = simulate(first, name, unit_model(), options());
  const SimulationResult b = simulate(second, name, unit_model(), options());
  const SimulationResult j = simulate(joined, name, unit_model(), options());
  // All bins of part one close before part two begins, so the packing of
  // the concatenation decomposes for every stateless-across-idle algorithm.
  // Exceptions: random-fit's RNG stream position differs in the second
  // part, and adaptive-mff deliberately carries its mu estimate across the
  // idle gap (learning from part one changes part two's classification).
  if (name == "random-fit" || name == "adaptive-mff") GTEST_SKIP();
  EXPECT_NEAR(j.total_cost, a.total_cost + b.total_cost, 1e-9 * j.total_cost);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmMetamorphicTest,
    ::testing::Combine(::testing::ValuesIn(all_algorithm_names()),
                       ::testing::Values(17u, 34u)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = std::get<0>(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dbp
