#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "engine/mpsc_ring.hpp"
#include "engine/router.hpp"
#include "obs/obs.hpp"
#include "opt/opt_total.hpp"
#include "sim/event.hpp"
#include "workload/cloud_gaming.hpp"

namespace dbp::engine {
namespace {

ServerSpec spec() { return ServerSpec{1.0, 6.0}; }  // $6/h = $0.1/min

EngineConfig config(std::size_t shards) {
  EngineConfig cfg;
  cfg.shard_count = shards;
  cfg.spec = spec();
  return cfg;
}

/// Streams an instance's full event sequence through the engine, calling
/// advance_epoch after each batch of simultaneous events so the streaming
/// OPT bounds integrate every inter-event segment exactly.
void stream_instance(ShardedDispatchEngine& eng, const Instance& instance) {
  const std::vector<Event> events = build_event_sequence(instance);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    const Item& item = instance.item(event.item);
    if (event.kind == EventKind::kArrival) {
      eng.submit(start_event(event.item, item.size, event.time));
    } else {
      eng.submit(end_event(event.item, event.time));
    }
    if (i + 1 == events.size() || events[i + 1].time != event.time) {
      eng.advance_epoch(event.time);
    }
  }
}

TEST(MpscRingTest, FifoAndCapacity) {
  BoundedMpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
  EXPECT_TRUE(ring.empty());
  // Wrap-around: the ring is reusable after a full drain.
  for (int i = 10; i < 14; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 10; i < 14; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpscRingTest, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(BoundedMpscRing<int>(3), PreconditionError);
  EXPECT_THROW(BoundedMpscRing<int>(0), PreconditionError);
  EXPECT_THROW(BoundedMpscRing<int>(1), PreconditionError);
}

TEST(RouterTest, HashRouterIsStableAndInRange) {
  const HashShardRouter router;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::size_t shard = router.shard_for(key, 16);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, router.shard_for(key, 16));  // pure
  }
  // Everything maps to shard 0 with one shard.
  EXPECT_EQ(router.shard_for(12345, 1), 0u);
}

TEST(RouterTest, RegionRouterPinsRegions) {
  const RegionShardRouter router({"ap", "eu-west", "us-east"});
  const std::uint64_t ap = router.route_key_for("ap");
  const std::uint64_t eu = router.route_key_for("eu-west");
  EXPECT_NE(ap, eu);
  // Full isolation when shards >= regions: distinct shards per region.
  EXPECT_NE(router.shard_for(ap, 3), router.shard_for(eu, 3));
  EXPECT_THROW((void)router.route_key_for("mars"), PreconditionError);
  EXPECT_THROW((void)router.shard_for(17, 3), PreconditionError);
}

TEST(EngineConfigTest, Validation) {
  EXPECT_NO_THROW(config(4).validate());
  EngineConfig bad = config(0);
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = config(1);
  bad.ring_capacity = 100;  // not a power of two
  EXPECT_THROW(bad.validate(), PreconditionError);
  bad = config(1);
  bad.fault_policy.on_anomaly = FaultPolicy::AnomalyAction::kThrow;
  EXPECT_THROW(bad.validate(), PreconditionError);
  EXPECT_THROW((ShardedDispatchEngine{bad}), PreconditionError);
}

TEST(EngineTest, SingleShardMatchesPlainDispatcher) {
  CloudGamingConfig workload;
  workload.horizon_hours = 2.0;
  workload.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(workload, 11);

  ShardedDispatchEngine eng(config(1));
  FaultPolicy drop;
  drop.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  GameServerDispatcher plain(spec(), "first-fit", {}, drop);

  const std::vector<Event> events = build_event_sequence(trace.instance);
  for (const Event& event : events) {
    const Item& item = trace.instance.item(event.item);
    if (event.kind == EventKind::kArrival) {
      eng.submit(start_event(event.item, item.size, event.time));
      (void)plain.start_session(event.item, item.size, event.time);
    } else {
      eng.submit(end_event(event.item, event.time));
      plain.end_session(event.item, event.time);
    }
  }
  eng.drain();

  const Time horizon = events.back().time;
  EXPECT_EQ(eng.active_sessions(), plain.active_sessions());
  EXPECT_EQ(eng.active_servers(), plain.active_servers());
  EXPECT_EQ(eng.events_applied(), events.size());
  // Bit-identical, not just close: the shard replays the same FIFO.
  EXPECT_EQ(eng.rental_cost_dollars(horizon), plain.rental_cost_dollars(horizon));
  EXPECT_EQ(eng.merged_fault_stats(), plain.fault_stats());
}

TEST(EngineTest, StreamingOptBoundsMatchBatchEstimator) {
  CloudGamingConfig workload;
  workload.horizon_hours = 2.0;
  workload.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(workload, 23);

  ShardedDispatchEngine eng(config(4));
  stream_instance(eng, trace.instance);
  const StreamingOptBounds streaming = eng.opt_bounds();

  const OptTotalResult batch =
      estimate_opt_total(trace.instance, spec().to_cost_model());
  // Same integral, different accumulation order (chronological vs dedup
  // first-occurrence), so compare to relative rounding tolerance.
  EXPECT_NEAR(streaming.lower_dollars, batch.lower_cost,
              1e-9 * std::max(1.0, batch.lower_cost));
  EXPECT_NEAR(streaming.upper_dollars, batch.upper_cost,
              1e-9 * std::max(1.0, batch.upper_cost));
  EXPECT_GT(streaming.segments, 0u);
  EXPECT_LE(streaming.lower_dollars,
            streaming.upper_dollars + 1e-12 * streaming.upper_dollars);
}

TEST(EngineTest, AnomalousEventsAreDroppedAndCounted) {
  ShardedDispatchEngine eng(config(2));
  eng.submit(start_event(1, 0.5, 0.0));
  eng.submit(start_event(1, 0.5, 1.0));  // duplicate
  eng.submit(end_event(99, 2.0));        // unknown
  eng.submit(start_event(2, 7.0, 3.0));  // invalid size
  eng.drain();
  const DispatcherFaultStats stats = eng.merged_fault_stats();
  EXPECT_EQ(stats.duplicate_starts, 1u);
  EXPECT_EQ(stats.unknown_ends, 1u);
  EXPECT_EQ(stats.invalid_sizes, 1u);
  EXPECT_EQ(eng.active_sessions(), 1u);
}

TEST(EngineTest, BackpressureSelfPumpsOnFullRing) {
  EngineConfig cfg = config(1);
  cfg.ring_capacity = 2;  // tiny ring: submit must self-pump constantly
  ShardedDispatchEngine eng(cfg);
  for (std::uint64_t id = 0; id < 100; ++id) {
    eng.submit(start_event(id, 0.01, static_cast<Time>(id)));
  }
  eng.drain();
  EXPECT_EQ(eng.active_sessions(), 100u);
  EXPECT_EQ(eng.events_applied(), 100u);
}

TEST(EngineTest, EpochEmitsShardAttributedTraceRecords) {
  obs::RunTracer tracer;
  const obs::ObsScope scope(&tracer, nullptr);
  ShardedDispatchEngine eng(config(3));
  eng.submit(start_event(1, 0.5, 0.0));
  eng.submit(start_event(2, 0.5, 0.0));
  eng.advance_epoch(0.0);
  eng.advance_epoch(10.0);

  const std::vector<obs::TraceRecord> records = tracer.snapshot();
  std::size_t marks = 0;
  std::size_t snapshots = 0;
  for (const obs::TraceRecord& record : records) {
    if (record.kind == obs::TraceKind::kEpochMark) {
      ++marks;
      EXPECT_EQ(record.shard, obs::kNoShard);
    } else if (record.kind == obs::TraceKind::kShardSnapshot) {
      EXPECT_LT(record.shard, 3u);  // every snapshot names its shard
      ++snapshots;
    }
  }
  EXPECT_EQ(marks, 2u);
  EXPECT_EQ(snapshots, 6u);  // 3 shards x 2 epochs
  // The second epoch mark reports both applied events.
  // (Application itself never traces: only epoch records exist.)
  EXPECT_EQ(records.size(), marks + snapshots);

  std::ostringstream jsonl;
  tracer.export_jsonl(jsonl, /*include_timings=*/false);
  EXPECT_NE(jsonl.str().find("\"shard\": 2"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"kind\": \"epoch_mark\""), std::string::npos);
}

TEST(EngineTest, ZeroLengthEpochSegmentsAreFree) {
  // The wire front-end's timer thread produces coincident epoch ticks under
  // load: a zero-length segment must contribute exactly 0 dollars and must
  // not inflate segments/exact_segments.
  ShardedDispatchEngine eng(config(2));
  ShardedDispatchEngine ref(config(2));
  for (ShardedDispatchEngine* e : {&eng, &ref}) {
    e->submit(start_event(1, 0.3, 0.0));
    e->submit(start_event(2, 0.6, 0.0));
    e->submit(start_event(3, 0.2, 0.0));
    e->advance_epoch(0.0);
  }

  eng.advance_epoch(5.0);
  const StreamingOptBounds at5 = eng.opt_bounds();
  EXPECT_EQ(at5.segments, 1u);
  // Coincident ticks: bit-identical bounds, no extra segments.
  eng.advance_epoch(5.0);
  eng.advance_epoch(5.0);
  const StreamingOptBounds still5 = eng.opt_bounds();
  EXPECT_EQ(still5.lower_dollars, at5.lower_dollars);
  EXPECT_EQ(still5.upper_dollars, at5.upper_dollars);
  EXPECT_EQ(still5.segments, at5.segments);
  EXPECT_EQ(still5.exact_segments, at5.exact_segments);

  // A run with coincident ticks stays bit-identical to one without.
  ref.advance_epoch(5.0);
  for (ShardedDispatchEngine* e : {&eng, &ref}) {
    e->submit(end_event(2, 8.0));
    e->advance_epoch(12.0);
  }
  const StreamingOptBounds a = eng.opt_bounds();
  const StreamingOptBounds b = ref.opt_bounds();
  EXPECT_EQ(a.lower_dollars, b.lower_dollars);
  EXPECT_EQ(a.upper_dollars, b.upper_dollars);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.exact_segments, b.exact_segments);
  EXPECT_EQ(eng.rental_cost_dollars(12.0), ref.rental_cost_dollars(12.0));
}

TEST(EngineTest, EpochTimesMustBeMonotone) {
  ShardedDispatchEngine eng(config(1));
  eng.advance_epoch(5.0);
  EXPECT_THROW(eng.advance_epoch(4.0), PreconditionError);
  EXPECT_NO_THROW(eng.advance_epoch(5.0));  // equal is fine (empty segment)
}

TEST(EngineTest, RegionRoutingIsolatesFleets) {
  auto router = std::make_unique<RegionShardRouter>(
      std::vector<std::string>{"ap", "eu"});
  const std::uint64_t ap = router->route_key_for("ap");
  const std::uint64_t eu = router->route_key_for("eu");
  ShardedDispatchEngine eng(config(2), std::move(router));

  SessionEvent a = start_event(1, 0.4, 0.0);
  a.route_key = ap;
  SessionEvent b = start_event(2, 0.4, 0.0);
  b.route_key = eu;
  eng.submit(a);
  eng.submit(b);
  eng.drain();
  // Region isolation: 0.4 + 0.4 would share one server in a single fleet;
  // pinned to separate shards they rent one server each.
  EXPECT_EQ(eng.active_servers(), 2u);
  EXPECT_EQ(eng.shard_dispatcher(eng.router().shard_for(ap, 2)).active_sessions(), 1u);
  EXPECT_EQ(eng.shard_dispatcher(eng.router().shard_for(eu, 2)).active_sessions(), 1u);
}

}  // namespace
}  // namespace dbp::engine
