#include "analysis/adaptive_adversary.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

PackerFactoryFn factory_for(const std::string& name, PackerOptions options = {}) {
  return [name, options]() { return make_packer(name, unit_model(), options); };
}

TEST(AdaptiveAdversaryTest, ForcesTheConstructionRatioOnEveryAnyFitMember) {
  const AdaptiveAdversaryConfig config{.k = 8, .mu = 4.0};
  for (const std::string name :
       {"first-fit", "best-fit", "worst-fit", "last-fit", "move-to-front-fit",
        "random-fit"}) {
    const AdaptiveAdversaryOutcome outcome =
        run_adaptive_adversary(factory_for(name), config);
    EXPECT_EQ(outcome.probe_bins, 8u) << name;
    EXPECT_TRUE(outcome.opt.exact) << name;
    EXPECT_NEAR(outcome.ratio, anyfit_construction_ratio(8.0, 4.0), 1e-9)
        << name;
  }
}

TEST(AdaptiveAdversaryTest, WorksAgainstNonAnyFitAlgorithms) {
  // Next Fit and the size-classed packers are not Any Fit, but the adaptive
  // adversary adjusts: ratio >= the Any Fit construction value.
  const AdaptiveAdversaryConfig config{.k = 6, .mu = 4.0};
  for (const std::string name :
       {"next-fit", "modified-first-fit", "harmonic-first-fit"}) {
    const AdaptiveAdversaryOutcome outcome =
        run_adaptive_adversary(factory_for(name), config);
    EXPECT_GE(outcome.ratio, anyfit_construction_ratio(6.0, 4.0) - 1e-9) << name;
  }
}

TEST(AdaptiveAdversaryTest, RatioApproachesMuInK) {
  double previous = 0.0;
  for (const std::size_t k : {2u, 8u, 32u}) {
    const AdaptiveAdversaryOutcome outcome = run_adaptive_adversary(
        factory_for("first-fit"), {.k = k, .mu = 6.0});
    EXPECT_GT(outcome.ratio, previous);
    previous = outcome.ratio;
  }
  EXPECT_GT(previous, 6.0 * 0.8);  // k = 32: within 20% of mu
  EXPECT_LT(previous, 6.0);
}

TEST(AdaptiveAdversaryTest, InstanceHasExactMu) {
  const AdaptiveAdversaryOutcome outcome =
      run_adaptive_adversary(factory_for("best-fit"), {.k = 5, .mu = 3.0});
  const InstanceMetrics metrics = compute_metrics(outcome.instance);
  EXPECT_DOUBLE_EQ(metrics.mu, 3.0);
  EXPECT_EQ(metrics.item_count, 25u);
}

TEST(AdaptiveAdversaryTest, SurvivorsKeepBinsOpenUntilMuDelta) {
  const AdaptiveAdversaryOutcome outcome =
      run_adaptive_adversary(factory_for("first-fit"), {.k = 4, .mu = 8.0});
  EXPECT_EQ(outcome.replay.open_bins_over_time.value_at(7.9), 4);
  EXPECT_EQ(outcome.replay.open_bins_over_time.value_at(8.0), 0);
}

TEST(AdaptiveAdversaryTest, RandomizedTargetIsReplayedWithSameSeed) {
  PackerOptions options;
  options.seed = 12345;
  const AdaptiveAdversaryOutcome outcome = run_adaptive_adversary(
      factory_for("random-fit", options), {.k = 10, .mu = 4.0});
  // The DBP_CHECK inside would have fired if the replay diverged; double
  // check the headline number here.
  EXPECT_EQ(outcome.probe_bins, outcome.replay.bins_opened);
}

TEST(AdaptiveAdversaryTest, RejectsClairvoyantTargets) {
  EXPECT_THROW((void)run_adaptive_adversary(factory_for("min-extension-fit"),
                                      {.k = 4, .mu = 4.0}),
               PreconditionError);
}

TEST(AdaptiveAdversaryTest, ValidatesConfig) {
  EXPECT_THROW(
      run_adaptive_adversary(factory_for("first-fit"), {.k = 0, .mu = 4.0}),
      PreconditionError);
  EXPECT_THROW(
      run_adaptive_adversary(factory_for("first-fit"), {.k = 4, .mu = 0.5}),
      PreconditionError);
}

}  // namespace
}  // namespace dbp
