#include "workload/random_instance.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/metrics.hpp"

namespace dbp {
namespace {

RandomInstanceConfig base_config() {
  RandomInstanceConfig config;
  config.item_count = 500;
  config.arrival.rate = 5.0;
  config.duration.min_length = 1.0;
  config.duration.max_length = 4.0;
  config.size.kind = SizeModel::Kind::kUniform;
  config.size.min_fraction = 0.05;
  config.size.max_fraction = 0.5;
  return config;
}

TEST(RandomInstanceTest, DeterministicUnderSeed) {
  const RandomInstanceConfig config = base_config();
  const Instance a = generate_random_instance(config, 42);
  const Instance b = generate_random_instance(config, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items()[i], b.items()[i]);
  }
}

TEST(RandomInstanceTest, DifferentSeedsDiffer) {
  const RandomInstanceConfig config = base_config();
  const Instance a = generate_random_instance(config, 1);
  const Instance b = generate_random_instance(config, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a.items()[i] == b.items()[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomInstanceTest, RespectsItemCount) {
  RandomInstanceConfig config = base_config();
  config.item_count = 123;
  EXPECT_EQ(generate_random_instance(config, 0).size(), 123u);
}

TEST(RandomInstanceTest, DurationsWithinBounds) {
  const Instance instance = generate_random_instance(base_config(), 7);
  for (const Item& item : instance.items()) {
    EXPECT_GE(item.interval_length(), 1.0 - 1e-12);
    EXPECT_LE(item.interval_length(), 4.0 + 1e-12);
  }
}

TEST(RandomInstanceTest, PinnedMuIsExact) {
  RandomInstanceConfig config = base_config();
  config.pin_mu_extremes = true;
  const Instance instance = generate_random_instance(config, 3);
  EXPECT_DOUBLE_EQ(compute_metrics(instance).mu, 4.0);
}

TEST(RandomInstanceTest, UnpinnedMuIsAtMostNominal) {
  RandomInstanceConfig config = base_config();
  config.pin_mu_extremes = false;
  const Instance instance = generate_random_instance(config, 3);
  EXPECT_LE(compute_metrics(instance).mu, 4.0 + 1e-12);
}

TEST(RandomInstanceTest, SizesWithinModel) {
  const Instance instance = generate_random_instance(base_config(), 11);
  for (const Item& item : instance.items()) {
    EXPECT_GE(item.size, 0.05);
    EXPECT_LE(item.size, 0.5);
  }
}

TEST(RandomInstanceTest, DyadicSizesAreExactPowers) {
  RandomInstanceConfig config = base_config();
  config.size.kind = SizeModel::Kind::kDyadic;
  config.size.min_exponent = 1;
  config.size.max_exponent = 4;
  const Instance instance = generate_random_instance(config, 5);
  for (const Item& item : instance.items()) {
    EXPECT_TRUE(item.size == 0.5 || item.size == 0.25 || item.size == 0.125 ||
                item.size == 0.0625)
        << item.size;
  }
}

TEST(RandomInstanceTest, DiscreteSizesComeFromSet) {
  RandomInstanceConfig config = base_config();
  config.size.kind = SizeModel::Kind::kDiscrete;
  config.size.fractions = {0.2, 0.3};
  config.size.weights = {1.0, 3.0};
  const Instance instance = generate_random_instance(config, 5);
  std::size_t count_03 = 0;
  for (const Item& item : instance.items()) {
    ASSERT_TRUE(item.size == 0.2 || item.size == 0.3);
    if (item.size == 0.3) ++count_03;
  }
  EXPECT_GT(count_03, instance.size() / 2);  // weighted 3:1
}

TEST(RandomInstanceTest, BurstArrivalsShareTimes) {
  RandomInstanceConfig config = base_config();
  config.arrival.kind = ArrivalModel::Kind::kBursts;
  config.arrival.burst_size = 10;
  config.arrival.burst_gap = 2.0;
  config.item_count = 40;
  const Instance instance = generate_random_instance(config, 1);
  // Items 0..9 arrive together, 10..19 two time units later, etc.
  EXPECT_DOUBLE_EQ(instance.item(0).arrival, instance.item(9).arrival);
  EXPECT_DOUBLE_EQ(instance.item(10).arrival - instance.item(9).arrival, 2.0);
}

TEST(RandomInstanceTest, PoissonArrivalsAreMonotone) {
  const Instance instance = generate_random_instance(base_config(), 9);
  for (std::size_t i = 1; i < instance.size(); ++i) {
    EXPECT_GE(instance.item(i).arrival, instance.item(i - 1).arrival);
  }
}

TEST(RandomInstanceTest, ConfigValidation) {
  RandomInstanceConfig config = base_config();
  config.item_count = 0;
  EXPECT_THROW((void)generate_random_instance(config, 0), PreconditionError);

  config = base_config();
  config.duration.max_length = 0.5;  // < min_length
  EXPECT_THROW((void)generate_random_instance(config, 0), PreconditionError);

  config = base_config();
  config.size.min_fraction = 0.0;
  EXPECT_THROW((void)generate_random_instance(config, 0), PreconditionError);

  config = base_config();
  config.arrival.rate = 0.0;
  EXPECT_THROW((void)generate_random_instance(config, 0), PreconditionError);
}

TEST(DurationModelTest, AllKindsSampleWithinBounds) {
  Rng rng(123);
  for (auto kind :
       {DurationModel::Kind::kFixed, DurationModel::Kind::kUniform,
        DurationModel::Kind::kExponential, DurationModel::Kind::kLogNormal,
        DurationModel::Kind::kPareto}) {
    DurationModel model;
    model.kind = kind;
    model.min_length = 2.0;
    model.max_length = 10.0;
    model.validate();
    for (int i = 0; i < 200; ++i) {
      const Time length = model.sample(rng);
      EXPECT_GE(length, 2.0) << static_cast<int>(kind);
      EXPECT_LE(length, 10.0) << static_cast<int>(kind);
    }
  }
}

TEST(DurationModelTest, FixedAlwaysMin) {
  DurationModel model;
  model.kind = DurationModel::Kind::kFixed;
  model.min_length = 3.0;
  model.max_length = 9.0;
  Rng rng(0);
  EXPECT_DOUBLE_EQ(model.sample(rng), 3.0);
  EXPECT_DOUBLE_EQ(model.nominal_mu(), 3.0);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(1);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.engine()() != b.engine()()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace dbp
