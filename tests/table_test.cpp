#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace dbp {
namespace {

TEST(TableTest, RequiresColumns) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(TableTest, RowArityChecked) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), PreconditionError);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), PreconditionError);
  EXPECT_NO_THROW(table.add_row({"1", "2"}));
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(TableTest, PrintAlignsColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1.5"});
  table.add_row({"longer", "22.25"});
  std::stringstream out;
  table.print(out);
  std::string line;
  std::getline(out, line);
  EXPECT_NE(line.find("name"), std::string::npos);
  EXPECT_NE(line.find("value"), std::string::npos);
  std::getline(out, line);
  EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);  // underline
  std::getline(out, line);
  EXPECT_NE(line.find("x"), std::string::npos);
  std::getline(out, line);
  EXPECT_NE(line.find("longer"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"with\"quote", "two\nlines"});
  std::stringstream out;
  table.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("\"two\nlines\""), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(TableTest, EmptyTableStillPrintsHeader) {
  Table table({"only"});
  std::stringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace dbp
