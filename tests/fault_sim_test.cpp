#include "sim/fault_sim.hpp"

#include <gtest/gtest.h>

#include "algo/factory.hpp"
#include "core/error.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

const CostModel kModel{1.0, 1.0, 1e-9};

Instance small_instance() {
  Instance instance;
  instance.add(0.0, 10.0, 0.3);   // id 0
  instance.add(0.0, 10.0, 0.3);   // id 1
  return instance;
}

/// Compares every observable field of two SimulationResults exactly —
/// bit-identical, not approximately equal.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_cost_from_bins, b.total_cost_from_bins);
  EXPECT_EQ(a.max_open_bins, b.max_open_bins);
  EXPECT_EQ(a.bins_opened, b.bins_opened);
  EXPECT_EQ(a.assignment, b.assignment);
  ASSERT_EQ(a.bin_usage.size(), b.bin_usage.size());
  for (std::size_t i = 0; i < a.bin_usage.size(); ++i) {
    EXPECT_EQ(a.bin_usage[i].opened, b.bin_usage[i].opened);
    EXPECT_EQ(a.bin_usage[i].closed, b.bin_usage[i].closed);
  }
}

TEST(FaultPlanTest, ValidateAcceptsSortedFiniteTimes) {
  FaultPlan plan;
  plan.crashes = {{1.0, CrashTarget::kFullest}, {1.0, CrashTarget::kRandom},
                  {4.0, CrashTarget::kOldest}};
  plan.anomalies = {{0.5, AnomalyKind::kNaNSize}};
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.size(), 4u);
}

TEST(FaultPlanTest, ValidateRejectsDecreasingOrNonFiniteTimes) {
  FaultPlan decreasing;
  decreasing.crashes = {{5.0, CrashTarget::kFullest},
                        {1.0, CrashTarget::kFullest}};
  EXPECT_THROW(decreasing.validate(), PreconditionError);

  FaultPlan non_finite;
  non_finite.anomalies = {{kTimeInfinity, AnomalyKind::kNaNSize}};
  EXPECT_THROW(non_finite.validate(), PreconditionError);
}

// Satellite (c), metamorphic half: an empty FaultPlan must reproduce
// simulate() bit-for-bit for every online algorithm.
TEST(FaultSimTest, EmptyPlanBitIdenticalToSimulate) {
  RandomInstanceConfig config;
  config.item_count = 150;
  const Instance instance = generate_random_instance(config, 11);
  PackerOptions options;
  options.seed = 7;
  options.known_mu = 32.0;
  for (const std::string& name : all_algorithm_names()) {
    const SimulationResult plain = simulate(instance, name, kModel, options);
    auto packer = make_packer(name, kModel, options);
    FaultInjectionStats stats;
    const SimulationResult faulted =
        simulate_faulted(instance, *packer, FaultPlan{}, &stats);
    SCOPED_TRACE(name);
    expect_identical(plain, faulted);
    EXPECT_EQ(stats.crashes_landed, 0u);
    EXPECT_EQ(stats.anomalies_injected, 0u);
    EXPECT_EQ(stats.sessions_redispatched, 0u);
  }
}

// Satellite (c), determinism half: same (seed, plan, instance, algorithm)
// must replay byte-identically, including the kRandom victim stream.
TEST(FaultSimTest, SameSeedAndPlanReplaysIdentically) {
  RandomInstanceConfig config;
  config.item_count = 120;
  const Instance instance = generate_random_instance(config, 5);
  FaultPlan plan;
  plan.seed = 99;
  plan.crashes = {{2.0, CrashTarget::kRandom},
                  {5.0, CrashTarget::kFullest},
                  {9.0, CrashTarget::kRandom}};
  plan.anomalies = {{1.0, AnomalyKind::kDuplicateStart},
                    {3.0, AnomalyKind::kUnknownSessionEnd},
                    {6.0, AnomalyKind::kOutOfOrderTimestamp}};
  const FaultSimulationResult first =
      simulate_with_faults(instance, "first-fit", kModel, plan);
  const FaultSimulationResult second =
      simulate_with_faults(instance, "first-fit", kModel, plan);
  expect_identical(first.faulted, second.faulted);
  expect_identical(first.baseline, second.baseline);
  EXPECT_EQ(first.cost_inflation_ratio, second.cost_inflation_ratio);
  EXPECT_EQ(first.stats.crashes_landed, second.stats.crashes_landed);
  EXPECT_EQ(first.stats.sessions_redispatched,
            second.stats.sessions_redispatched);
  EXPECT_EQ(first.stats.anomalies_dropped, second.stats.anomalies_dropped);
}

TEST(FaultSimTest, CrashClosesBinAndRedispatchesLiveSessions) {
  // Both items share bin 0 under First Fit; the crash at t=5 must close it
  // and re-open a fresh bin for the re-dispatched pair.
  const Instance instance = small_instance();
  FaultPlan plan;
  plan.crashes = {{5.0, CrashTarget::kFullest}};
  auto packer = make_packer("first-fit", kModel);
  FaultInjectionStats stats;
  const SimulationResult result =
      simulate_faulted(instance, *packer, plan, &stats);

  EXPECT_EQ(stats.crashes_requested, 1u);
  EXPECT_EQ(stats.crashes_landed, 1u);
  EXPECT_EQ(stats.sessions_redispatched, 2u);
  ASSERT_EQ(result.bins_opened, 2u);
  // Victim bin: [0, 5); replacement: [5, 10). Cost total is unchanged here
  // because the re-dispatch repacked both items into one bin again.
  EXPECT_DOUBLE_EQ(result.bin_usage[0].opened, 0.0);
  EXPECT_DOUBLE_EQ(result.bin_usage[0].closed, 5.0);
  EXPECT_DOUBLE_EQ(result.bin_usage[1].opened, 5.0);
  EXPECT_DOUBLE_EQ(result.bin_usage[1].closed, 10.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 10.0);
  // Final assignment reflects the post-crash placement.
  EXPECT_EQ(result.assignment[0], BinId{1});
  EXPECT_EQ(result.assignment[1], BinId{1});
}

TEST(FaultSimTest, CrashTargetSelectsFullestAndEmptiest) {
  // First Fit: bin 0 holds 0.9 + 0.05 (fullest), bin 1 holds 0.6.
  Instance instance;
  instance.add(0.0, 10.0, 0.9);   // id 0 -> bin 0
  instance.add(1.0, 10.0, 0.6);   // id 1 -> bin 1
  instance.add(2.0, 10.0, 0.05);  // id 2 -> bin 0

  FaultPlan fullest;
  fullest.crashes = {{5.0, CrashTarget::kFullest}};
  auto packer_a = make_packer("first-fit", kModel);
  FaultInjectionStats stats_a;
  (void)simulate_faulted(instance, *packer_a, fullest, &stats_a);
  EXPECT_EQ(stats_a.sessions_redispatched, 2u);  // ids 0 and 2

  FaultPlan emptiest;
  emptiest.crashes = {{5.0, CrashTarget::kEmptiest}};
  auto packer_b = make_packer("first-fit", kModel);
  FaultInjectionStats stats_b;
  (void)simulate_faulted(instance, *packer_b, emptiest, &stats_b);
  EXPECT_EQ(stats_b.sessions_redispatched, 1u);  // id 1 alone
}

TEST(FaultSimTest, CrashOnIdleFleetIsCountedAsRequestedOnly) {
  const Instance instance = small_instance();
  FaultPlan plan;
  plan.crashes = {{-5.0, CrashTarget::kFullest},   // before any arrival
                  {50.0, CrashTarget::kFullest}};  // after the last departure
  auto packer = make_packer("first-fit", kModel);
  FaultInjectionStats stats;
  const SimulationResult result =
      simulate_faulted(instance, *packer, plan, &stats);
  EXPECT_EQ(stats.crashes_requested, 2u);
  EXPECT_EQ(stats.crashes_landed, 0u);
  EXPECT_DOUBLE_EQ(result.total_cost, 10.0);
}

TEST(FaultSimTest, AnomaliesAreDroppedCountedAndHarmless) {
  // One anomaly of every kind, timed while sessions are live. The guard
  // must absorb all of them and the packing must be untouched.
  RandomInstanceConfig config;
  config.item_count = 80;
  const Instance instance = generate_random_instance(config, 21);
  FaultPlan plan;
  plan.seed = 4;
  const TimeInterval period = instance.packing_period();
  const Time mid = 0.5 * (period.begin + period.end);
  plan.anomalies = {{mid, AnomalyKind::kDuplicateStart},
                    {mid, AnomalyKind::kUnknownSessionEnd},
                    {mid, AnomalyKind::kOutOfOrderTimestamp},
                    {mid, AnomalyKind::kNaNSize},
                    {mid, AnomalyKind::kNegativeSize}};

  const SimulationResult plain = simulate(instance, "best-fit", kModel);
  auto packer = make_packer("best-fit", kModel);
  FaultInjectionStats stats;
  const SimulationResult faulted =
      simulate_faulted(instance, *packer, plan, &stats);

  expect_identical(plain, faulted);
  EXPECT_EQ(stats.anomalies_injected, 5u);
  EXPECT_EQ(stats.total_dropped(), 5u);
  for (std::size_t kind = 0; kind < kAnomalyKindCount; ++kind) {
    EXPECT_EQ(stats.anomalies_dropped[kind], 1u)
        << to_string(static_cast<AnomalyKind>(kind));
  }
}

TEST(FaultSimTest, RejectsClairvoyantPackers) {
  const Instance instance = small_instance();
  auto packer = make_packer("align-departures-fit", kModel);
  EXPECT_THROW((void)simulate_faulted(instance, *packer, FaultPlan{}),
               PreconditionError);
}

TEST(FaultSimTest, RejectsReusedPacker) {
  const Instance instance = small_instance();
  auto packer = make_packer("first-fit", kModel);
  (void)simulate(instance, *packer);
  EXPECT_THROW((void)simulate_faulted(instance, *packer, FaultPlan{}),
               PreconditionError);
}

TEST(FaultSimTest, EmptyInstanceYieldsEmptyResult) {
  FaultPlan plan;
  plan.crashes = {{1.0, CrashTarget::kFullest}};
  auto packer = make_packer("first-fit", kModel);
  FaultInjectionStats stats;
  const SimulationResult result =
      simulate_faulted(Instance{}, *packer, plan, &stats);
  EXPECT_EQ(result.bins_opened, 0u);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  EXPECT_EQ(stats.crashes_requested, 1u);
  EXPECT_EQ(stats.crashes_landed, 0u);
}

TEST(FaultSimTest, InflationRatioIsExactQuotient) {
  // A crash that genuinely inflates cost: the orphans lose their long-lived
  // partnership and one of them gets repacked with a short-lived stranger.
  Instance instance;
  instance.add(0.0, 20.0, 0.5);  // id 0 \_ share bin 0 for the full [0, 20)
  instance.add(0.0, 20.0, 0.5);  // id 1 /
  instance.add(2.0, 6.0, 0.5);   // id 2 -> bin 1, alone, [2, 6)
  FaultPlan plan;
  plan.crashes = {{3.0, CrashTarget::kOldest}};
  const FaultSimulationResult cell =
      simulate_with_faults(instance, "first-fit", kModel, plan);
  // Baseline: bin 0 [0, 20) + bin 1 [2, 6) = 24.
  EXPECT_DOUBLE_EQ(cell.baseline.total_cost, 24.0);
  // Crash of bin 0 at t=3: id 0 re-dispatches into bin 1 (First Fit), which
  // must then stay open until t=20; id 1 no longer fits and opens bin 2.
  // Faulted: bin 0 [0, 3) + bin 1 [2, 20) + bin 2 [3, 20) = 3 + 18 + 17 = 38.
  EXPECT_DOUBLE_EQ(cell.faulted.total_cost, 38.0);
  EXPECT_DOUBLE_EQ(cell.cost_inflation_ratio, 38.0 / 24.0);
  EXPECT_EQ(cell.stats.sessions_redispatched, 2u);
  EXPECT_EQ(cell.faulted.bins_opened, 3u);
}

}  // namespace
}  // namespace dbp
