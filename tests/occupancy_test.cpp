#include "analysis/occupancy.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(OccupancyTest, SingleFullBin) {
  Instance instance;
  instance.add(0.0, 4.0, 1.0);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const OccupancyReport report = compute_occupancy(instance, result, unit_model());
  EXPECT_DOUBLE_EQ(report.used_volume, 4.0);
  EXPECT_DOUBLE_EQ(report.paid_volume, 4.0);
  EXPECT_DOUBLE_EQ(report.utilization, 1.0);
  EXPECT_DOUBLE_EQ(report.busy_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.bin_lifetime.mean, 4.0);
  EXPECT_DOUBLE_EQ(report.items_per_bin.mean, 1.0);
}

TEST(OccupancyTest, HalfEmptyBin) {
  Instance instance;
  instance.add(0.0, 4.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const OccupancyReport report = compute_occupancy(instance, result, unit_model());
  EXPECT_DOUBLE_EQ(report.utilization, 0.5);
  EXPECT_DOUBLE_EQ(report.mean_level, 0.5);
}

TEST(OccupancyTest, CapacityScalesPaidVolume) {
  Instance instance;
  instance.add(0.0, 2.0, 1.0);
  const CostModel model{4.0, 1.0, 1e-9};
  const SimulationResult result = simulate(instance, "first-fit", model);
  const OccupancyReport report = compute_occupancy(instance, result, model);
  EXPECT_DOUBLE_EQ(report.paid_volume, 8.0);  // 2 time x capacity 4
  EXPECT_DOUBLE_EQ(report.utilization, 0.25);
  EXPECT_DOUBLE_EQ(report.mean_level, 1.0);
}

TEST(OccupancyTest, IdleGapReducesBusyFraction) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  instance.add(3.0, 4.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const OccupancyReport report = compute_occupancy(instance, result, unit_model());
  EXPECT_DOUBLE_EQ(report.busy_fraction, 0.5);  // 2 busy of 4 total
  EXPECT_EQ(report.bin_lifetime.count, 2u);
  EXPECT_DOUBLE_EQ(report.items_per_bin.max, 1.0);
}

TEST(OccupancyTest, UtilizationBoundedByOne) {
  RandomInstanceConfig config;
  config.item_count = 400;
  const Instance instance = generate_random_instance(config, 3);
  for (const std::string name : {"first-fit", "next-fit", "best-fit"}) {
    const SimulationResult result = simulate(instance, name, unit_model());
    const OccupancyReport report =
        compute_occupancy(instance, result, unit_model());
    EXPECT_GT(report.utilization, 0.0) << name;
    EXPECT_LE(report.utilization, 1.0 + 1e-9) << name;
    EXPECT_LE(report.busy_fraction, 1.0 + 1e-9) << name;
  }
}

TEST(OccupancyTest, TighterAlgorithmHasHigherUtilization) {
  // Next Fit strands capacity; First Fit reuses it. On a churny workload
  // FF's utilization must be at least NF's.
  RandomInstanceConfig config;
  config.item_count = 600;
  config.arrival.rate = 15.0;
  const Instance instance = generate_random_instance(config, 8);
  const OccupancyReport ff = compute_occupancy(
      instance, simulate(instance, "first-fit", unit_model()), unit_model());
  const OccupancyReport nf = compute_occupancy(
      instance, simulate(instance, "next-fit", unit_model()), unit_model());
  EXPECT_GT(ff.utilization, nf.utilization);
}

TEST(OccupancyTest, RejectsEmptyAndMismatched) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  EXPECT_THROW((void)compute_occupancy(Instance{}, result, unit_model()),
               PreconditionError);
  Instance other;
  other.add(0.0, 1.0, 0.5);
  other.add(0.0, 1.0, 0.5);
  EXPECT_THROW((void)compute_occupancy(other, result, unit_model()), PreconditionError);
}

}  // namespace
}  // namespace dbp
