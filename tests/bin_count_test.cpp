#include "opt/bin_count.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "core/error.hpp"
#include "workload/rng.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(BinCountTest, EmptyMultiset) {
  const BinCountBounds bounds = optimal_bin_count({}, unit_model());
  EXPECT_EQ(bounds.lower, 0u);
  EXPECT_EQ(bounds.upper, 0u);
  EXPECT_TRUE(bounds.exact());
}

TEST(BinCountTest, EverythingFitsOneBin) {
  const std::vector<double> sizes{0.3, 0.3, 0.3};
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 1u);
}

TEST(BinCountTest, EqualSizesFastPathExact) {
  // 7 items of size 0.3: 3 per bin -> ceil(7/3) = 3.
  const std::vector<double> sizes(7, 0.3);
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 3u);
}

TEST(BinCountTest, EqualSizesWithFpNoise) {
  // 2000 items of 1e-3: exactly 2 bins (1000 per bin with tolerance).
  const std::vector<double> sizes(2000, 1e-3);
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 2u);
}

TEST(BinCountTest, EqualSizeHalfPacksPairs) {
  const std::vector<double> sizes(5, 0.5);
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 3u);
}

TEST(BinCountTest, EqualSizesMatchFitsRuleWithZeroTolerance) {
  // The fp counter-example behind the per_bin_count fix: with tol = 0 and
  // size = nextafter(0.5, 1.0), the quotient 1.0 / size is
  // 1.9999999999999996 but the old 1e-12 fudge factor floored it to 2 —
  // yet 2 * size = 1.0000000000000002 > 1.0, so two such items do NOT
  // share a unit bin under CostModel::fits. The old equal-size fast path
  // certified 2 bins for 4 items as "exact"; every real packing opens 4.
  const CostModel model{1.0, 1.0, 0.0};
  const double size = std::nextafter(0.5, 1.0);
  ASSERT_GT(2.0 * size, 1.0);
  const BinCountBounds bounds =
      optimal_bin_count(std::vector<double>(4, size), model);
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 4u);
}

TEST(BinCountTest, EqualSizesPerBinCountAgreesWithFits) {
  // Property pinning the equal-size fast path to the placement rule: the
  // per-bin count must be exactly the largest m with m * size fitting under
  // CostModel::fits — computed here by the multiplication itself.
  for (const double tol : {0.0, 1e-9}) {
    const CostModel model{1.0, 1.0, tol};
    for (const double size :
         {0.2, 0.1, 1.0 / 3.0, 0.07, 0.125, 0.25, 0.49, 0.9}) {
      std::size_t m = 1;
      while (model.fits(static_cast<double>(m + 1) * size, model.bin_capacity)) {
        ++m;
      }
      const std::size_t n = 3 * m + 1;  // forces ceil(n/m) = 4
      const BinCountBounds bounds =
          optimal_bin_count(std::vector<double>(n, size), model);
      EXPECT_TRUE(bounds.exact()) << "size " << size << " tol " << tol;
      EXPECT_EQ(bounds.upper, 4u) << "size " << size << " tol " << tol;
    }
  }
}

TEST(BinCountTest, GeneralMixSolvedExactly) {
  const std::vector<double> sizes{0.45, 0.4, 0.35, 0.3, 0.25, 0.25};
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 2u);
}

TEST(BinCountTest, SolverDisabledGivesHeuristicBounds) {
  const std::vector<double> sizes{0.45, 0.4, 0.35, 0.3, 0.25, 0.25};
  BinCountOptions options;
  options.use_exact_solver = false;
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model(), options);
  EXPECT_LE(bounds.lower, 2u);
  EXPECT_GE(bounds.upper, 2u);
}

TEST(BinCountTest, RejectsInvalidSizes) {
  EXPECT_THROW((void)optimal_bin_count(std::vector<double>{1.5}, unit_model()),
               PreconditionError);
  EXPECT_THROW((void)optimal_bin_count(std::vector<double>{0.0}, unit_model()),
               PreconditionError);
}

TEST(BinCountOracleTest, MemoHitsOnRepeatedMultiset) {
  BinCountOracle oracle(unit_model());
  const std::vector<double> sorted{0.5, 0.4, 0.3};
  const BinCountBounds first = oracle.count_sorted(sorted);
  const BinCountBounds second = oracle.count_sorted(sorted);
  EXPECT_EQ(first.lower, second.lower);
  EXPECT_EQ(first.upper, second.upper);
  EXPECT_EQ(oracle.hits(), 1u);
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.memo_size(), 1u);
}

TEST(BinCountOracleTest, DistinguishesDifferentMultisets) {
  BinCountOracle oracle(unit_model());
  (void)oracle.count_sorted(std::vector<double>{0.5, 0.5});
  (void)oracle.count_sorted(std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_EQ(oracle.misses(), 2u);
}

TEST(BinCountOracleTest, AgreesWithDirectComputation) {
  BinCountOracle oracle(unit_model());
  const std::vector<double> sorted{0.9, 0.6, 0.6, 0.2, 0.2, 0.1};
  const BinCountBounds via_oracle = oracle.count_sorted(sorted);
  const BinCountBounds direct = optimal_bin_count(sorted, unit_model());
  EXPECT_EQ(via_oracle.lower, direct.lower);
  EXPECT_EQ(via_oracle.upper, direct.upper);
}

TEST(BinCountRleTest, MatchesFlatComputationOnRandomMultisets) {
  Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    std::vector<double> sizes;
    const std::size_t n = 5 + rng.uniform_int(0, 120);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix continuous and duplicated sizes so runs of every length occur.
      sizes.push_back(rng.bernoulli(0.5)
                          ? rng.uniform(0.05, 0.9)
                          : 0.1 * static_cast<double>(rng.uniform_int(1, 9)));
    }
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    const std::vector<SizeRun> runs = rle_from_sorted(sizes);
    const BinCountBounds flat = optimal_bin_count(sizes, unit_model());
    const BinCountBounds rle = optimal_bin_count_rle(runs, unit_model());
    EXPECT_EQ(flat.lower, rle.lower) << "round " << round;
    EXPECT_EQ(flat.upper, rle.upper) << "round " << round;
  }
}

TEST(BinCountRleTest, MatchesFlatWithoutExactSolver) {
  // With the solver off, the bounds come straight from the RLE heuristic
  // chain (L2 / FFD / BFD) — this pins their bit-identity to the flat code.
  BinCountOptions options;
  options.use_exact_solver = false;
  Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    std::vector<double> sizes;
    const std::size_t n = 5 + rng.uniform_int(0, 200);
    for (std::size_t i = 0; i < n; ++i) {
      sizes.push_back(rng.bernoulli(0.5)
                          ? rng.uniform(0.02, 0.6)
                          : 0.05 * static_cast<double>(rng.uniform_int(1, 12)));
    }
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    const std::vector<SizeRun> runs = rle_from_sorted(sizes);
    const BinCountBounds flat = optimal_bin_count(sizes, unit_model(), options);
    const BinCountBounds rle = optimal_bin_count_rle(runs, unit_model(), options);
    EXPECT_EQ(flat.lower, rle.lower) << "round " << round;
    EXPECT_EQ(flat.upper, rle.upper) << "round " << round;
  }
}

TEST(BinCountRleTest, RejectsMalformedRuns) {
  // Non-decreasing sizes and zero counts violate the RLE invariant.
  EXPECT_THROW((void)optimal_bin_count_rle(
                   std::vector<SizeRun>{{0.3, 1}, {0.5, 1}}, unit_model()),
               PreconditionError);
  EXPECT_THROW((void)optimal_bin_count_rle(std::vector<SizeRun>{{0.3, 0}},
                                           unit_model()),
               PreconditionError);
}

TEST(BinCountOracleTest, BoundedEvictionKeepsMemoUnderLimit) {
  constexpr std::size_t kLimit = 16;
  BinCountOracle oracle(unit_model(), {}, kLimit);
  for (int i = 1; i <= 200; ++i) {
    const std::vector<double> sorted(static_cast<std::size_t>(i), 0.25);
    (void)oracle.count_sorted(sorted);
    EXPECT_LE(oracle.memo_size(), kLimit);
  }
  EXPECT_GT(oracle.evictions(), 0u);
  // Eviction trims, it does not wipe: the memo keeps a working set.
  EXPECT_GT(oracle.memo_size(), kLimit / 4);
}

TEST(BinCountOracleTest, EvictionKeepsRecentEntriesHot) {
  constexpr std::size_t kLimit = 8;
  BinCountOracle oracle(unit_model(), {}, kLimit);
  for (int i = 1; i <= 100; ++i) {
    const std::vector<double> sorted(static_cast<std::size_t>(i), 0.25);
    (void)oracle.count_sorted(sorted);
  }
  // The most recent key must have survived the FIFO trims.
  const std::uint64_t hits_before = oracle.hits();
  (void)oracle.count_sorted(std::vector<double>(100, 0.25));
  EXPECT_EQ(oracle.hits(), hits_before + 1);
}

TEST(BinCountOracleTest, FifoEvictionCountersPinned) {
  // Pins the exact hit/miss/eviction trajectory of the FIFO-halving memo at
  // limit 4. Stores 1..7 are distinct multisets (k items of 0.25):
  //   stores 1-4: inserts, no eviction              (size 4)
  //   store  5:   at limit -> cutoff drops seq 0,1  (size 3)
  //   store  6:   insert                            (size 4)
  //   store  7:   at limit -> cutoff drops seq 2,3  (size 3)
  // Any change to the eviction arithmetic moves these numbers.
  constexpr std::size_t kLimit = 4;
  BinCountOracle oracle(unit_model(), {}, kLimit);
  for (std::size_t k = 1; k <= 7; ++k) {
    (void)oracle.count_sorted(std::vector<double>(k, 0.25));
  }
  EXPECT_EQ(oracle.misses(), 7u);
  EXPECT_EQ(oracle.hits(), 0u);
  EXPECT_EQ(oracle.evictions(), 4u);
  EXPECT_EQ(oracle.memo_size(), 3u);

  // Survivors are exactly the last three inserts (seq 4, 5, 6)...
  (void)oracle.count_sorted(std::vector<double>(5, 0.25));
  (void)oracle.count_sorted(std::vector<double>(6, 0.25));
  (void)oracle.count_sorted(std::vector<double>(7, 0.25));
  EXPECT_EQ(oracle.hits(), 3u);
  EXPECT_EQ(oracle.misses(), 7u);
  // ...and the evicted oldest key misses and is re-stored.
  (void)oracle.count_sorted(std::vector<double>(1, 0.25));
  EXPECT_EQ(oracle.hits(), 3u);
  EXPECT_EQ(oracle.misses(), 8u);
}

TEST(BinCountOracleTest, EvictedEntriesAreRecomputedCorrectly) {
  constexpr std::size_t kLimit = 4;
  BinCountOracle oracle(unit_model(), {}, kLimit);
  const std::vector<double> probe{0.9, 0.6, 0.6, 0.2};
  const BinCountBounds first = oracle.count_sorted(probe);
  for (int i = 1; i <= 50; ++i) {
    (void)oracle.count_sorted(std::vector<double>(static_cast<std::size_t>(i), 0.3));
  }
  const BinCountBounds again = oracle.count_sorted(probe);
  EXPECT_EQ(again.lower, first.lower);
  EXPECT_EQ(again.upper, first.upper);
  EXPECT_GT(oracle.evictions(), 0u);
}

}  // namespace
}  // namespace dbp
