#include "opt/bin_count.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(BinCountTest, EmptyMultiset) {
  const BinCountBounds bounds = optimal_bin_count({}, unit_model());
  EXPECT_EQ(bounds.lower, 0u);
  EXPECT_EQ(bounds.upper, 0u);
  EXPECT_TRUE(bounds.exact());
}

TEST(BinCountTest, EverythingFitsOneBin) {
  const std::vector<double> sizes{0.3, 0.3, 0.3};
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 1u);
}

TEST(BinCountTest, EqualSizesFastPathExact) {
  // 7 items of size 0.3: 3 per bin -> ceil(7/3) = 3.
  const std::vector<double> sizes(7, 0.3);
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 3u);
}

TEST(BinCountTest, EqualSizesWithFpNoise) {
  // 2000 items of 1e-3: exactly 2 bins (1000 per bin with tolerance).
  const std::vector<double> sizes(2000, 1e-3);
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 2u);
}

TEST(BinCountTest, EqualSizeHalfPacksPairs) {
  const std::vector<double> sizes(5, 0.5);
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 3u);
}

TEST(BinCountTest, GeneralMixSolvedExactly) {
  const std::vector<double> sizes{0.45, 0.4, 0.35, 0.3, 0.25, 0.25};
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model());
  EXPECT_TRUE(bounds.exact());
  EXPECT_EQ(bounds.upper, 2u);
}

TEST(BinCountTest, SolverDisabledGivesHeuristicBounds) {
  const std::vector<double> sizes{0.45, 0.4, 0.35, 0.3, 0.25, 0.25};
  BinCountOptions options;
  options.use_exact_solver = false;
  const BinCountBounds bounds = optimal_bin_count(sizes, unit_model(), options);
  EXPECT_LE(bounds.lower, 2u);
  EXPECT_GE(bounds.upper, 2u);
}

TEST(BinCountTest, RejectsInvalidSizes) {
  EXPECT_THROW((void)optimal_bin_count(std::vector<double>{1.5}, unit_model()),
               PreconditionError);
  EXPECT_THROW((void)optimal_bin_count(std::vector<double>{0.0}, unit_model()),
               PreconditionError);
}

TEST(BinCountOracleTest, MemoHitsOnRepeatedMultiset) {
  BinCountOracle oracle(unit_model());
  const std::vector<double> sorted{0.5, 0.4, 0.3};
  const BinCountBounds first = oracle.count_sorted(sorted);
  const BinCountBounds second = oracle.count_sorted(sorted);
  EXPECT_EQ(first.lower, second.lower);
  EXPECT_EQ(first.upper, second.upper);
  EXPECT_EQ(oracle.hits(), 1u);
  EXPECT_EQ(oracle.misses(), 1u);
  EXPECT_EQ(oracle.memo_size(), 1u);
}

TEST(BinCountOracleTest, DistinguishesDifferentMultisets) {
  BinCountOracle oracle(unit_model());
  (void)oracle.count_sorted(std::vector<double>{0.5, 0.5});
  (void)oracle.count_sorted(std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_EQ(oracle.misses(), 2u);
}

TEST(BinCountOracleTest, AgreesWithDirectComputation) {
  BinCountOracle oracle(unit_model());
  const std::vector<double> sorted{0.9, 0.6, 0.6, 0.2, 0.2, 0.1};
  const BinCountBounds via_oracle = oracle.count_sorted(sorted);
  const BinCountBounds direct = optimal_bin_count(sorted, unit_model());
  EXPECT_EQ(via_oracle.lower, direct.lower);
  EXPECT_EQ(via_oracle.upper, direct.upper);
}

}  // namespace
}  // namespace dbp
