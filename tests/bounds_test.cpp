#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

namespace dbp {
namespace {

TEST(BoundsTest, PaperHeadlineValues) {
  // Abstract's numbers.
  EXPECT_DOUBLE_EQ(ff_general_bound(1.0), 15.0);           // 2mu+13
  EXPECT_DOUBLE_EQ(mff_bound(1.0), 8.0 / 7.0 + 55.0 / 7.0);  // 8/7 mu + 55/7 = 9
  EXPECT_DOUBLE_EQ(mff_known_mu_bound(1.0), 9.0);          // mu + 8
  EXPECT_DOUBLE_EQ(ff_small_items_bound(2.0, 1.0), 2.0 + 12.0 + 1.0);
  EXPECT_DOUBLE_EQ(ff_large_items_bound(4.0), 4.0);
}

TEST(BoundsTest, MffBeatsFfForAllMu) {
  for (double mu = 1.0; mu <= 64.0; mu *= 2.0) {
    EXPECT_LT(mff_bound(mu), ff_general_bound(mu)) << mu;
    EXPECT_LE(mff_known_mu_bound(mu), mff_bound(mu) + 1e-12) << mu;
  }
}

TEST(BoundsTest, SmallItemBoundImprovesWithK) {
  // k/(k-1) -> 1: the mu coefficient shrinks toward 1 as items get smaller.
  EXPECT_GT(ff_small_items_bound(2.0, 8.0), ff_small_items_bound(4.0, 8.0));
  EXPECT_GT(ff_small_items_bound(4.0, 8.0), ff_small_items_bound(16.0, 8.0));
}

TEST(BoundsTest, MffSplitBoundMinimizedNearMuPlus7) {
  // The paper: k = mu + 7 minimizes max{k, (mu+6)/(1-1/k)}, giving mu + 7
  // (plus the +1 span term -> mu + 8).
  const double mu = 5.0;
  const double at_optimum = mff_bound_for_split(mu + 7.0, mu);
  EXPECT_DOUBLE_EQ(at_optimum, mu + 8.0);
  for (const double k : {2.0, 5.0, 9.0, 20.0, 50.0}) {
    EXPECT_GE(mff_bound_for_split(k, mu), at_optimum - 1e-12) << k;
  }
}

TEST(BoundsTest, MffDefaultSplitMatchesPaperK8) {
  // With k = 8 the bound is max{8, 8/7*(mu+6)} + 1; for mu >= 1 that is
  // 8/7 mu + 48/7 + 1 = 8/7 mu + 55/7 (the abstract's formula).
  for (double mu = 1.0; mu <= 32.0; mu *= 2.0) {
    EXPECT_NEAR(mff_bound_for_split(8.0, mu), mff_bound(mu), 1e-12) << mu;
  }
}

TEST(BoundsTest, ConstructionRatioApproachesMu) {
  EXPECT_DOUBLE_EQ(anyfit_construction_ratio(1.0, 4.0), 1.0);
  EXPECT_LT(anyfit_construction_ratio(100.0, 4.0), 4.0);
  EXPECT_GT(anyfit_construction_ratio(1000.0, 4.0), 3.98);
  EXPECT_DOUBLE_EQ(universal_lower_bound(4.0), 4.0);
}

TEST(BoundsTest, ProvenBoundLookup) {
  EXPECT_DOUBLE_EQ(*proven_bound_for("first-fit", 4.0), 21.0);
  EXPECT_DOUBLE_EQ(*proven_bound_for("modified-first-fit", 4.0),
                   8.0 / 7.0 * 4.0 + 55.0 / 7.0);
  EXPECT_DOUBLE_EQ(*proven_bound_for("modified-first-fit-known-mu", 4.0), 12.0);
  EXPECT_FALSE(proven_bound_for("best-fit", 4.0).has_value());
  EXPECT_FALSE(proven_bound_for("worst-fit", 4.0).has_value());
}

TEST(BoundsTest, SizeRestrictionsTightenFf) {
  // All sizes < W/16, mu = 2: Theorem 4 beats Theorem 5.
  EXPECT_LT(*proven_bound_for("first-fit", 2.0, 16.0), ff_general_bound(2.0));
  // All sizes >= W/2: Theorem 3 gives the constant 2.
  EXPECT_DOUBLE_EQ(*proven_bound_for("first-fit", 50.0, std::nullopt, 2.0), 2.0);
}

TEST(BoundsTest, Validation) {
  EXPECT_THROW((void)ff_general_bound(0.5), PreconditionError);
  EXPECT_THROW((void)ff_small_items_bound(1.0, 2.0), PreconditionError);
  EXPECT_THROW((void)mff_bound_for_split(0.9, 2.0), PreconditionError);
  EXPECT_THROW((void)anyfit_construction_ratio(0.0, 2.0), PreconditionError);
}

}  // namespace
}  // namespace dbp
