#include "algo/strategies.hpp"

#include <gtest/gtest.h>

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

// Registers bins 0..n-1 with given residuals.
template <typename Strategy>
Strategy with_bins(std::initializer_list<double> residuals) {
  Strategy strategy(unit_model());
  BinId id = 0;
  for (double r : residuals) strategy.on_bin_registered(id++, r);
  return strategy;
}

TEST(FirstFitStrategyTest, PicksEarliestFittingBin) {
  auto s = with_bins<FirstFitStrategy>({0.1, 0.5, 0.9});
  EXPECT_EQ(s.select(0.4), std::optional<BinId>(1));
  EXPECT_EQ(s.select(0.05), std::optional<BinId>(0));
  EXPECT_EQ(s.select(0.8), std::optional<BinId>(2));
  EXPECT_EQ(s.select(0.95), std::nullopt);
}

TEST(FirstFitStrategyTest, TracksResidualChanges) {
  auto s = with_bins<FirstFitStrategy>({0.5, 0.5});
  s.on_residual_changed(0, 0.1);
  EXPECT_EQ(s.select(0.3), std::optional<BinId>(1));
  s.on_residual_changed(0, 0.6);
  EXPECT_EQ(s.select(0.3), std::optional<BinId>(0));
}

TEST(FirstFitStrategyTest, ClosedBinNeverSelected) {
  auto s = with_bins<FirstFitStrategy>({0.9, 0.9});
  s.on_bin_closed(0);
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(1));
  EXPECT_THROW(s.on_bin_closed(0), PreconditionError);  // double close
}

TEST(LastFitStrategyTest, PicksLatestFittingBin) {
  auto s = with_bins<LastFitStrategy>({0.9, 0.5, 0.1});
  EXPECT_EQ(s.select(0.4), std::optional<BinId>(1));
  EXPECT_EQ(s.select(0.05), std::optional<BinId>(2));
  EXPECT_EQ(s.select(0.8), std::optional<BinId>(0));
  EXPECT_EQ(s.select(0.95), std::nullopt);
}

TEST(BestFitStrategyTest, PicksSmallestSufficientResidual) {
  auto s = with_bins<BestFitStrategy>({0.9, 0.3, 0.5});
  EXPECT_EQ(s.select(0.3), std::optional<BinId>(1));
  EXPECT_EQ(s.select(0.4), std::optional<BinId>(2));
  EXPECT_EQ(s.select(0.6), std::optional<BinId>(0));
  EXPECT_EQ(s.select(0.91), std::nullopt);
}

TEST(BestFitStrategyTest, TieBreaksTowardEarliestBin) {
  auto s = with_bins<BestFitStrategy>({0.5, 0.5, 0.5});
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(0));
}

TEST(BestFitStrategyTest, ResidualUpdateMovesBinInOrder) {
  auto s = with_bins<BestFitStrategy>({0.9, 0.4});
  s.on_residual_changed(0, 0.2);
  EXPECT_EQ(s.select(0.2), std::optional<BinId>(0));
  EXPECT_EQ(s.select(0.3), std::optional<BinId>(1));
}

TEST(BestFitStrategyTest, CloseRemovesFromIndex) {
  auto s = with_bins<BestFitStrategy>({0.4, 0.9});
  s.on_bin_closed(0);
  EXPECT_EQ(s.select(0.2), std::optional<BinId>(1));
}

TEST(WorstFitStrategyTest, PicksLargestResidual) {
  auto s = with_bins<WorstFitStrategy>({0.3, 0.9, 0.5});
  EXPECT_EQ(s.select(0.2), std::optional<BinId>(1));
  s.on_residual_changed(1, 0.1);
  EXPECT_EQ(s.select(0.2), std::optional<BinId>(2));
}

TEST(WorstFitStrategyTest, DeclinesWhenEvenLargestDoesNotFit) {
  auto s = with_bins<WorstFitStrategy>({0.3, 0.4});
  EXPECT_EQ(s.select(0.5), std::nullopt);
}

TEST(WorstFitStrategyTest, TieBreaksTowardEarliestBin) {
  auto s = with_bins<WorstFitStrategy>({0.5, 0.5});
  EXPECT_EQ(s.select(0.1), std::optional<BinId>(0));
}

TEST(NextFitStrategyTest, OnlyCurrentBinIsCandidate) {
  NextFitStrategy s(unit_model());
  s.on_bin_registered(0, 1.0);
  EXPECT_EQ(s.select(0.6), std::optional<BinId>(0));
  s.on_residual_changed(0, 0.4);
  // 0.5 does not fit bin 0 -> strategy declines and retires bin 0 forever.
  EXPECT_EQ(s.select(0.5), std::nullopt);
  s.on_bin_registered(1, 1.0);
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(1));
  // Bin 0 is never revisited even though 0.1 would fit it.
  s.on_residual_changed(1, 0.05);
  EXPECT_EQ(s.select(0.1), std::nullopt);
}

TEST(NextFitStrategyTest, IsNotAnyFit) {
  NextFitStrategy s(unit_model());
  EXPECT_FALSE(s.any_fit_contract());
  FirstFitStrategy ff(unit_model());
  EXPECT_TRUE(ff.any_fit_contract());
}

TEST(NextFitStrategyTest, CurrentCloseResetsCandidate) {
  NextFitStrategy s(unit_model());
  s.on_bin_registered(0, 1.0);
  s.on_bin_closed(0);
  EXPECT_EQ(s.select(0.1), std::nullopt);
}

TEST(RandomFitStrategyTest, OnlyFittingBinsAreChosen) {
  RandomFitStrategy s(unit_model(), 123);
  s.on_bin_registered(0, 0.1);
  s.on_bin_registered(1, 0.9);
  s.on_bin_registered(2, 0.05);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_EQ(s.select(0.5), std::optional<BinId>(1));
  }
}

TEST(RandomFitStrategyTest, UniformishOverCandidates) {
  RandomFitStrategy s(unit_model(), 99);
  s.on_bin_registered(0, 0.9);
  s.on_bin_registered(1, 0.9);
  int count0 = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    if (s.select(0.5) == std::optional<BinId>(0)) ++count0;
  }
  EXPECT_GT(count0, trials / 2 - 200);
  EXPECT_LT(count0, trials / 2 + 200);
}

TEST(RandomFitStrategyTest, ClosedBinLeavesPool) {
  RandomFitStrategy s(unit_model(), 5);
  s.on_bin_registered(0, 0.9);
  s.on_bin_registered(1, 0.9);
  s.on_bin_closed(0);
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_EQ(s.select(0.5), std::optional<BinId>(1));
  }
  s.on_bin_closed(1);
  EXPECT_EQ(s.select(0.5), std::nullopt);
}

TEST(MoveToFrontStrategyTest, RecencyOrderDrivesSelection) {
  MoveToFrontStrategy s(unit_model());
  s.on_bin_registered(0, 0.9);
  s.on_bin_registered(1, 0.9);  // front: 1, 0
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(1));
  s.on_residual_changed(1, 0.1);
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(0));  // 1 no longer fits
  // 0 moved to front; restore 1's room and 0 stays preferred.
  s.on_residual_changed(1, 0.9);
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(0));
}

TEST(MoveToFrontStrategyTest, CloseRemovesFromList) {
  MoveToFrontStrategy s(unit_model());
  s.on_bin_registered(0, 0.9);
  s.on_bin_registered(1, 0.9);
  s.on_bin_closed(1);
  EXPECT_EQ(s.select(0.5), std::optional<BinId>(0));
}

TEST(StrategyNamesTest, AllDistinct) {
  EXPECT_EQ(FirstFitStrategy(unit_model()).name(), "first-fit");
  EXPECT_EQ(BestFitStrategy(unit_model()).name(), "best-fit");
  EXPECT_EQ(WorstFitStrategy(unit_model()).name(), "worst-fit");
  EXPECT_EQ(NextFitStrategy(unit_model()).name(), "next-fit");
  EXPECT_EQ(LastFitStrategy(unit_model()).name(), "last-fit");
  EXPECT_EQ(RandomFitStrategy(unit_model(), 0).name(), "random-fit");
  EXPECT_EQ(MoveToFrontStrategy(unit_model()).name(), "move-to-front-fit");
}

}  // namespace
}  // namespace dbp
