// Strict CLI parsing regressions (tools/cli.hpp + core/parse.hpp).
//
// The historical failure mode: cli::Args::get_u64/get_double called raw
// std::stoull/std::stod, so "8abc" parsed as 8, "-1" wrapped to a huge
// uint64, and "abc" escaped as an uncaught std::invalid_argument instead
// of a PreconditionError carrying the usage hint. These tests pin the
// strict behavior for both helpers and for the shared core parsers the
// wire protocol reuses.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"

namespace dbp {
namespace {

constexpr const char* kUsage = "usage: test_tool [--value=N]\n";

/// Builds an Args over `--key=value` style arguments.
cli::Args make_args(std::vector<std::string> argv_strings) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive per call
  storage = std::move(argv_strings);
  storage.insert(storage.begin(), "test_tool");
  argv.reserve(storage.size());
  for (std::string& arg : storage) argv.push_back(arg.data());
  return cli::Args(static_cast<int>(argv.size()), argv.data(),
                   {"value", "threads"}, kUsage);
}

TEST(CliParseTest, U64AcceptsPlainDigits) {
  EXPECT_EQ(make_args({"--value=8"}).get_u64("value", 0), 8u);
  EXPECT_EQ(make_args({"--value=0"}).get_u64("value", 7), 0u);
  EXPECT_EQ(make_args({}).get_u64("value", 42), 42u);  // absent -> fallback
  EXPECT_EQ(make_args({"--value=18446744073709551615"}).get_u64("value", 0),
            UINT64_MAX);
}

TEST(CliParseTest, U64RejectsTrailingGarbage) {
  // The exact regression: "8abc" must not parse as 8.
  EXPECT_THROW((void)make_args({"--value=8abc"}).get_u64("value", 0),
               PreconditionError);
}

TEST(CliParseTest, U64RejectsNegative) {
  // The exact regression: "-1" must not wrap to 18446744073709551615.
  EXPECT_THROW((void)make_args({"--value=-1"}).get_u64("value", 0),
               PreconditionError);
}

TEST(CliParseTest, U64RejectsNonNumeric) {
  // The exact regression: "abc" must be a PreconditionError, not an
  // uncaught std::invalid_argument terminate.
  EXPECT_THROW((void)make_args({"--value=abc"}).get_u64("value", 0),
               PreconditionError);
}

TEST(CliParseTest, U64RejectsOverflowSignsAndPrefixes) {
  for (const char* bad : {"18446744073709551616",  // UINT64_MAX + 1
                          "99999999999999999999999", "+1", "0x10", "1e3",
                          " 8", "8 ", ""}) {
    EXPECT_THROW(
        (void)make_args({std::string("--value=") + bad}).get_u64("value", 0),
        PreconditionError)
        << "accepted '" << bad << "'";
  }
}

TEST(CliParseTest, U64ErrorCarriesUsageHint) {
  try {
    (void)make_args({"--value=8abc"}).get_u64("value", 0);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("8abc"), std::string::npos) << what;
    EXPECT_NE(what.find(kUsage), std::string::npos) << what;
  }
}

TEST(CliParseTest, DoubleAcceptsDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(make_args({"--value=0.5"}).get_double("value", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(make_args({"--value=-2.25"}).get_double("value", 0.0), -2.25);
  EXPECT_DOUBLE_EQ(make_args({"--value=1e-3"}).get_double("value", 0.0), 1e-3);
  EXPECT_DOUBLE_EQ(make_args({}).get_double("value", 3.5), 3.5);
}

TEST(CliParseTest, DoubleRejectsGarbageAndNonFinite) {
  for (const char* bad : {"abc", "1.5x", "8abc", "", " 1.0", "1.0 ", "+1.5",
                          "nan", "inf", "-inf", "1e999"}) {
    EXPECT_THROW((void)make_args({std::string("--value=") + bad})
                     .get_double("value", 0.0),
                 PreconditionError)
        << "accepted '" << bad << "'";
  }
}

TEST(CliParseTest, DoubleErrorCarriesUsageHint) {
  try {
    (void)make_args({"--value=1.5x"}).get_double("value", 0.0);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1.5x"), std::string::npos) << what;
    EXPECT_NE(what.find(kUsage), std::string::npos) << what;
  }
}

TEST(CliParseTest, ThreadCountKeepsCapAndStrictness) {
  EXPECT_EQ(make_args({"--threads=8"}).get_thread_count(), 8);
  EXPECT_EQ(make_args({}).get_thread_count(), 0);
  EXPECT_EQ(make_args({"--threads"}).get_thread_count(), 0);  // bare flag
  EXPECT_THROW((void)make_args({"--threads=513"}).get_thread_count(),
               PreconditionError);
  EXPECT_THROW((void)make_args({"--threads=8abc"}).get_thread_count(),
               PreconditionError);
  EXPECT_THROW((void)make_args({"--threads=-1"}).get_thread_count(),
               PreconditionError);
}

// The shared core parsers, as the wire protocol uses them (no usage hint).
TEST(CliParseTest, CoreParsersMatchCliSemantics) {
  EXPECT_EQ(parse_u64_strict("12345", "field"), 12345u);
  EXPECT_DOUBLE_EQ(parse_double_strict("-0.125", "field"), -0.125);
  EXPECT_THROW((void)parse_u64_strict("8abc", "field"), PreconditionError);
  EXPECT_THROW((void)parse_u64_strict("-1", "field"), PreconditionError);
  EXPECT_THROW((void)parse_double_strict("abc", "field"), PreconditionError);
  EXPECT_THROW((void)parse_double_strict("nan", "field"), PreconditionError);
}

}  // namespace
}  // namespace dbp
