// Cross-shard / cross-budget determinism differential (ISSUE 8 tentpole).
//
// One fixed event stream goes through the sharded engine under every
// combination of worker budgets {1, 2, 8} x shard counts {1, 4, 16}.
// Pinned guarantees:
//   * For a fixed shard count, EVERYTHING observable is bit-identical
//     across worker budgets: aggregate and per-shard bills, OPT bounds,
//     merged RLE snapshots, fault statistics, exported traces.
//   * Across shard counts, the partition-invariant quantities re-merge
//     bit-identically: active-session counts, the merged RLE size
//     multiset, and the streaming OPT_total bounds (the bounds depend only
//     on the merged multiset per segment, never on the partition).
//   * Each shard is bit-identical to a standalone GameServerDispatcher fed
//     that shard's subsequence, and the aggregate bill is the shard-order
//     sum of those standalone bills.
// The aggregate *bill* is intentionally NOT compared across shard counts:
// First Fit on a union is not the sum of First Fit on partitions
// (docs/dispatch_engine.md "What sharding changes").
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "exec/worker_budget.hpp"
#include "obs/obs.hpp"
#include "sim/event.hpp"
#include "workload/cloud_gaming.hpp"

namespace dbp::engine {
namespace {

ServerSpec spec() { return ServerSpec{1.0, 6.0}; }

/// The epoch (0-based batch index) at which mid-stream state is captured.
constexpr std::size_t kCaptureBatch = 50;

struct RunResult {
  double bill = 0.0;
  std::vector<double> shard_bills;
  StreamingOptBounds opt{};
  DispatcherFaultStats stats{};
  std::vector<SizeRun> mid_rle;
  std::size_t mid_active = 0;
  std::size_t final_active = 0;
  std::uint64_t events_applied = 0;
  std::string trace;
};

Instance workload() {
  CloudGamingConfig config;
  config.horizon_hours = 2.0;
  config.peak_arrivals_per_minute = 1.5;
  return generate_cloud_gaming_trace(config, 42).instance;
}

RunResult run(const Instance& instance, std::size_t shards, int budget) {
  exec::WorkerBudget::set(budget);
  obs::RunTracer tracer;
  const obs::ObsScope scope(&tracer, nullptr);

  EngineConfig config;
  config.shard_count = shards;
  config.spec = spec();
  ShardedDispatchEngine eng(config);

  const std::vector<Event> events = build_event_sequence(instance);
  RunResult result;
  std::size_t batch = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    if (event.kind == EventKind::kArrival) {
      eng.submit(start_event(event.item, instance.item(event.item).size,
                             event.time));
    } else {
      eng.submit(end_event(event.item, event.time));
    }
    if (i + 1 == events.size() || events[i + 1].time != event.time) {
      eng.advance_epoch(event.time);
      if (batch == kCaptureBatch) {
        result.mid_rle = eng.merged_snapshot_rle();
        result.mid_active = eng.active_sessions();
      }
      ++batch;
    }
  }

  const Time horizon = events.back().time;
  result.bill = eng.rental_cost_dollars(horizon);
  for (std::size_t s = 0; s < shards; ++s) {
    result.shard_bills.push_back(
        eng.shard_dispatcher(s).rental_cost_dollars(horizon));
  }
  result.opt = eng.opt_bounds();
  result.stats = eng.merged_fault_stats();
  result.final_active = eng.active_sessions();
  result.events_applied = eng.events_applied();
  std::ostringstream jsonl;
  tracer.export_jsonl(jsonl, /*include_timings=*/false);
  result.trace = jsonl.str();
  exec::WorkerBudget::set(0);
  return result;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.bill, b.bill);
  EXPECT_EQ(a.shard_bills, b.shard_bills);
  EXPECT_EQ(a.opt.lower_dollars, b.opt.lower_dollars);
  EXPECT_EQ(a.opt.upper_dollars, b.opt.upper_dollars);
  EXPECT_EQ(a.opt.segments, b.opt.segments);
  EXPECT_EQ(a.opt.exact_segments, b.opt.exact_segments);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.mid_rle, b.mid_rle);
  EXPECT_EQ(a.mid_active, b.mid_active);
  EXPECT_EQ(a.final_active, b.final_active);
  EXPECT_EQ(a.events_applied, b.events_applied);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(EngineDifferentialTest, BitIdenticalAcrossWorkerBudgets) {
  const Instance instance = workload();
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{16}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const RunResult budget1 = run(instance, shards, 1);
    const RunResult budget2 = run(instance, shards, 2);
    const RunResult budget8 = run(instance, shards, 8);
    expect_bitwise_equal(budget1, budget2);
    expect_bitwise_equal(budget1, budget8);
  }
}

TEST(EngineDifferentialTest, PartitionInvariantsRemergeAcrossShardCounts) {
  const Instance instance = workload();
  const RunResult one = run(instance, 1, 2);
  const RunResult four = run(instance, 4, 2);
  const RunResult sixteen = run(instance, 16, 2);

  // The merged multiset and its integral are partition-invariant,
  // bit for bit.
  EXPECT_EQ(one.mid_rle, four.mid_rle);
  EXPECT_EQ(one.mid_rle, sixteen.mid_rle);
  EXPECT_FALSE(one.mid_rle.empty());  // the capture batch saw live sessions
  EXPECT_EQ(one.mid_active, four.mid_active);
  EXPECT_EQ(one.mid_active, sixteen.mid_active);
  EXPECT_EQ(one.opt.lower_dollars, four.opt.lower_dollars);
  EXPECT_EQ(one.opt.lower_dollars, sixteen.opt.lower_dollars);
  EXPECT_EQ(one.opt.upper_dollars, four.opt.upper_dollars);
  EXPECT_EQ(one.opt.upper_dollars, sixteen.opt.upper_dollars);
  EXPECT_EQ(one.events_applied, four.events_applied);
  EXPECT_EQ(one.events_applied, sixteen.events_applied);
  EXPECT_EQ(one.stats, four.stats);
  EXPECT_EQ(one.stats, sixteen.stats);

  // Every configuration's bill sits inside its own certified OPT bounds'
  // sanity envelope: bill >= lower bound (no engine can beat OPT).
  for (const RunResult* r : {&one, &four, &sixteen}) {
    EXPECT_GE(r->bill, r->opt.lower_dollars * (1.0 - 1e-9));
  }
}

TEST(EngineDifferentialTest, ShardsMatchStandaloneDispatchers) {
  const Instance instance = workload();
  constexpr std::size_t kShards = 4;
  const RunResult sharded = run(instance, kShards, 8);

  // Rebuild each shard's subsequence with the same router and replay it
  // through a standalone dispatcher.
  const HashShardRouter router;
  FaultPolicy drop;
  drop.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  const std::vector<Event> events = build_event_sequence(instance);
  double aggregate = 0.0;
  for (std::size_t s = 0; s < kShards; ++s) {
    GameServerDispatcher standalone(spec(), "first-fit", {}, drop);
    for (const Event& event : events) {
      if (router.shard_for(event.item, kShards) != s) continue;
      if (event.kind == EventKind::kArrival) {
        (void)standalone.start_session(event.item,
                                       instance.item(event.item).size,
                                       event.time);
      } else {
        standalone.end_session(event.item, event.time);
      }
    }
    const double bill = standalone.rental_cost_dollars(events.back().time);
    EXPECT_EQ(sharded.shard_bills[s], bill) << "shard " << s;
    aggregate += bill;
  }
  // The aggregate bill is exactly the shard-order sum of standalone bills.
  EXPECT_EQ(sharded.bill, aggregate);
}

}  // namespace
}  // namespace dbp::engine
