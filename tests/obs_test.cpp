#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/run_tracer.hpp"

namespace dbp::obs {
namespace {

// ---- MetricsRegistry ----

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.counter("events").add();
  registry.counter("events").add(41);
  EXPECT_EQ(registry.counter_value("events"), 42u);
  EXPECT_EQ(registry.counter_value("never-touched"), std::nullopt);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  registry.gauge("open_bins").set(3.0);
  registry.gauge("open_bins").set(7.0);
  EXPECT_EQ(registry.gauge_value("open_bins"), 7.0);
  EXPECT_EQ(registry.gauge_value("missing"), std::nullopt);
}

TEST(MetricsRegistryTest, TimerAggregates) {
  MetricsRegistry registry;
  registry.timer("phase").record_ms(2.0);
  registry.timer("phase").record_ms(6.0);
  registry.timer("phase").record_ms(4.0);
  const auto stats = registry.timer_stats("phase");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 3u);
  EXPECT_DOUBLE_EQ(stats->total_ms, 12.0);
  EXPECT_DOUBLE_EQ(stats->min_ms, 2.0);
  EXPECT_DOUBLE_EQ(stats->max_ms, 6.0);
  EXPECT_DOUBLE_EQ(stats->mean_ms(), 4.0);
  EXPECT_EQ(registry.timer_stats("missing"), std::nullopt);
}

TEST(MetricsRegistryTest, ReferencesAreStable) {
  MetricsRegistry registry;
  Counter& first = registry.counter("a");
  // Force more storage to be allocated; `first` must stay valid.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).add();
  }
  EXPECT_EQ(&first, &registry.counter("a"));
  first.add(5);
  EXPECT_EQ(registry.counter_value("a"), 5u);
}

TEST(MetricsRegistryTest, ConcurrentCountersAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) registry.counter("hits").add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.counter_value("hits"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, WriteTextSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("zz.last").add(2);
  registry.counter("aa.first").add(1);
  registry.gauge("mid.gauge").set(1.5);
  registry.timer("mid.timer").record_ms(3.0);
  std::ostringstream out;
  registry.write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("aa.first"), std::string::npos);
  EXPECT_NE(text.find("zz.last"), std::string::npos);
  EXPECT_NE(text.find("mid.gauge"), std::string::npos);
  EXPECT_NE(text.find("mid.timer"), std::string::npos);
  EXPECT_LT(text.find("aa.first"), text.find("zz.last"));
}

TEST(ScopedTimerTest, RecordsOnceAndNullDisables) {
  MetricsRegistry registry;
  {
    ScopedTimer scope(&registry.timer("work"));
    scope.stop();
    scope.stop();  // idempotent
  }
  const auto stats = registry.timer_stats("work");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->count, 1u);
  ScopedTimer disabled(nullptr);  // must not crash or record
  disabled.stop();
}

// ---- RunTracer ----

TEST(RunTracerTest, RingDropsOldestAndKeepsSequence) {
  RunTracer tracer(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    TraceRecord record;
    record.kind = TraceKind::kArrival;
    record.count = i;
    tracer.record(std::move(record));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.total_recorded(), 6u);
  const std::vector<TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 2);  // 0 and 1 were evicted
    EXPECT_EQ(records[i].count, i + 2);
  }
}

TEST(RunTracerTest, ClearKeepsNumbering) {
  RunTracer tracer(8);
  tracer.record(TraceRecord{});
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  tracer.record(TraceRecord{});
  EXPECT_EQ(tracer.snapshot().front().seq, 1u);
}

TEST(RunTracerTest, ExportEmitsHeaderAndOmitsAbsentFields) {
  RunTracer tracer(8);
  TraceRecord arrival;
  arrival.time = 1.5;
  arrival.kind = TraceKind::kArrival;
  arrival.item = 3;
  arrival.bin = 2;
  arrival.size = 0.25;
  arrival.count = 4;
  tracer.record(std::move(arrival));
  TraceRecord phase;
  phase.kind = TraceKind::kOptPhase;
  phase.ms = 12.5;
  phase.label = "sweep";
  tracer.record(std::move(phase));

  std::ostringstream out;
  tracer.export_jsonl(out);
  std::istringstream lines(out.str());
  std::string header, first, second;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_NE(header.find("\"kind\": \"trace_meta\""), std::string::npos);
  EXPECT_NE(header.find("\"schema\": \"dbp-trace/1\""), std::string::npos);
  EXPECT_NE(header.find("\"records\": 2"), std::string::npos);
  EXPECT_NE(first.find("\"kind\": \"arrival\""), std::string::npos);
  EXPECT_NE(first.find("\"item\": 3"), std::string::npos);
  EXPECT_NE(first.find("\"bin\": 2"), std::string::npos);
  EXPECT_NE(first.find("\"count\": 4"), std::string::npos);
  EXPECT_EQ(first.find("\"ms\""), std::string::npos);
  EXPECT_EQ(first.find("\"label\""), std::string::npos);
  EXPECT_NE(second.find("\"kind\": \"opt_phase\""), std::string::npos);
  EXPECT_NE(second.find("\"ms\": 12.5"), std::string::npos);
  EXPECT_NE(second.find("\"label\": \"sweep\""), std::string::npos);
  EXPECT_EQ(second.find("\"item\""), std::string::npos);
}

TEST(RunTracerTest, ExportWithoutTimingsStripsMsOnly) {
  RunTracer tracer(8);
  TraceRecord phase;
  phase.kind = TraceKind::kOptPhase;
  phase.ms = 3.25;
  phase.label = "evaluate";
  phase.count = 10;
  tracer.record(std::move(phase));
  std::ostringstream with, without;
  tracer.export_jsonl(with, /*include_timings=*/true);
  tracer.export_jsonl(without, /*include_timings=*/false);
  EXPECT_NE(with.str().find("\"ms\""), std::string::npos);
  EXPECT_EQ(without.str().find("\"ms\""), std::string::npos);
  EXPECT_NE(without.str().find("\"count\": 10"), std::string::npos);
}

TEST(RunTracerTest, LabelsAreEscaped) {
  RunTracer tracer(4);
  TraceRecord record;
  record.kind = TraceKind::kFaultAnomaly;
  record.label = "quote\"back\\slash\nnewline";
  tracer.record(std::move(record));
  std::ostringstream out;
  tracer.export_jsonl(out);
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
}

// ---- ObsScope / context ----

TEST(ObsScopeTest, InstallsAndRestores) {
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
  RunTracer outer_tracer(8);
  MetricsRegistry outer_metrics;
  {
    ObsScope outer(&outer_tracer, &outer_metrics);
    EXPECT_EQ(tracer(), &outer_tracer);
    EXPECT_EQ(metrics(), &outer_metrics);
    {
      ObsScope inner(nullptr, nullptr);  // scopes nest and shadow
      EXPECT_EQ(tracer(), nullptr);
      EXPECT_EQ(metrics(), nullptr);
    }
    EXPECT_EQ(tracer(), &outer_tracer);
  }
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
}

TEST(ObsScopeTest, WorkerThreadsDoNotInheritScope) {
  RunTracer tracer_obj(8);
  ObsScope scope(&tracer_obj, nullptr);
  RunTracer* seen = &tracer_obj;
  std::thread worker([&seen] { seen = tracer(); });
  worker.join();
  EXPECT_EQ(seen, nullptr);
  EXPECT_EQ(tracer(), &tracer_obj);
}

TEST(ObsScopeTest, EmittersNoOpWithoutScope) {
  // Must not crash, allocate a tracer, or record anywhere.
  trace_arrival(1.0, 0, 0.5, 0, 1);
  trace_departure(2.0, 0, 0);
  SUCCEED();
}

}  // namespace
}  // namespace dbp::obs
