#include "opt/classical.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(FfdTest, EmptyInput) {
  EXPECT_EQ(first_fit_decreasing({}, unit_model()), 0u);
  EXPECT_EQ(best_fit_decreasing({}, unit_model()), 0u);
}

TEST(FfdTest, SingleItem) {
  const std::vector<double> sizes{0.7};
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 1u);
}

TEST(FfdTest, PerfectPairs) {
  const std::vector<double> sizes{0.6, 0.4, 0.7, 0.3};
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 2u);
  EXPECT_EQ(best_fit_decreasing(sizes, unit_model()), 2u);
}

TEST(FfdTest, UnsortedInputHandled) {
  const std::vector<double> sizes{0.2, 0.9, 0.3, 0.8, 0.1};
  // Descending: .9 .8 .3 .2 .1 -> bins: [.9 .1], [.8 .2], [.3] = 3.
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 3u);
}

TEST(FfdTest, ClassicFfdExample) {
  // All items slightly above 1/4: three per bin.
  const std::vector<double> sizes(12, 0.26);
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 4u);
}

TEST(FfdTest, ToleranceAllowsExactFills) {
  // 10 x 0.1 has fp sum 1 + ulp; must still be one bin.
  const std::vector<double> sizes(10, 0.1);
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 1u);
  EXPECT_EQ(best_fit_decreasing(sizes, unit_model()), 1u);
}

TEST(FfdTest, CapacityScaling) {
  const CostModel model{2.0, 1.0, 1e-9};
  const std::vector<double> sizes{1.5, 0.5, 1.0, 1.0};
  EXPECT_EQ(first_fit_decreasing(sizes, model), 2u);
}

TEST(FfdTest, RejectsOversizeAndNonPositive) {
  EXPECT_THROW((void)first_fit_decreasing(std::vector<double>{1.2}, unit_model()),
               PreconditionError);
  EXPECT_THROW((void)first_fit_decreasing(std::vector<double>{0.0}, unit_model()),
               PreconditionError);
  EXPECT_THROW((void)best_fit_decreasing(std::vector<double>{-0.1}, unit_model()),
               PreconditionError);
}

TEST(FfdTest, SortedVariantRequiresSortedInput) {
  const std::vector<double> unsorted{0.1, 0.9};
  EXPECT_THROW((void)first_fit_decreasing_sorted(unsorted, unit_model()),
               PreconditionError);
  EXPECT_THROW((void)best_fit_decreasing_sorted(unsorted, unit_model()),
               PreconditionError);
}

TEST(FfdTest, SuboptimalOnKnownInstance) {
  // FFD/BFD pack {.4 .4}{.3 .3 .3}{.3} = 3 bins while the optimum is
  // {.4 .3 .3}{.4 .3 .3} = 2 — the classic decreasing-heuristic gap the
  // exact solver must close (see exact_test).
  const std::vector<double> sizes{0.4, 0.4, 0.3, 0.3, 0.3, 0.3};
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 3u);
  EXPECT_EQ(best_fit_decreasing(sizes, unit_model()), 3u);
}

TEST(FfdTest, ManySmallItems) {
  const std::vector<double> sizes(1000, 0.001);
  EXPECT_EQ(first_fit_decreasing(sizes, unit_model()), 1u);
  const std::vector<double> sizes2(2001, 0.001);
  EXPECT_EQ(first_fit_decreasing(sizes2, unit_model()), 3u);
}

}  // namespace
}  // namespace dbp
