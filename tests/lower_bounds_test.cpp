#include "opt/lower_bounds.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "opt/classical.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(L1Test, EmptyIsZero) {
  EXPECT_EQ(l1_lower_bound({}, unit_model()), 0u);
}

TEST(L1Test, CeilOfTotalSize) {
  EXPECT_EQ(l1_lower_bound(std::vector<double>{0.5, 0.5, 0.1}, unit_model()), 2u);
  EXPECT_EQ(l1_lower_bound(std::vector<double>{0.2}, unit_model()), 1u);
  EXPECT_EQ(l1_lower_bound(std::vector<double>{1.0, 1.0}, unit_model()), 2u);
}

TEST(L1Test, ToleratesFloatNoise) {
  // 10 x 0.1 sums to 1 + ulp; L1 must say 1, not 2.
  EXPECT_EQ(l1_lower_bound(std::vector<double>(10, 0.1), unit_model()), 1u);
  EXPECT_EQ(l1_lower_bound(std::vector<double>(30, 0.1), unit_model()), 3u);
}

TEST(L2Test, DominatesL1OnLargeItems) {
  // Three items of 0.6: L1 = ceil(1.8) = 2, but no two fit together: L2 = 3.
  const std::vector<double> sizes{0.6, 0.6, 0.6};
  EXPECT_EQ(l1_lower_bound(sizes, unit_model()), 2u);
  EXPECT_EQ(l2_lower_bound(sizes, unit_model()), 3u);
}

TEST(L2Test, MixedLargeAndSmall) {
  // 0.9-items pair with nothing >= 0.2; alpha = 0.2 separates them.
  const std::vector<double> sizes{0.9, 0.9, 0.2, 0.2, 0.2};
  EXPECT_EQ(l2_lower_bound(sizes, unit_model()), 3u);
}

TEST(L2Test, EqualsL1ForTinyItems) {
  const std::vector<double> sizes(35, 0.1);
  EXPECT_EQ(l2_lower_bound(sizes, unit_model()), 4u);
}

TEST(L2Test, NeverExceedsFfd) {
  // Soundness smoke on assorted size mixes.
  const std::vector<std::vector<double>> cases{
      {0.5, 0.5, 0.5, 0.5},
      {0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1},
      {0.51, 0.51, 0.49, 0.49},
      {0.34, 0.34, 0.34, 0.33, 0.33, 0.33},
      {0.99, 0.01, 0.5},
  };
  for (const auto& sizes : cases) {
    EXPECT_LE(l2_lower_bound(sizes, unit_model()),
              first_fit_decreasing(sizes, unit_model()));
    EXPECT_GE(l2_lower_bound(sizes, unit_model()),
              l1_lower_bound(sizes, unit_model()));
  }
}

TEST(L2Test, HalfPlusEpsilonItems) {
  const std::vector<double> sizes{0.51, 0.51, 0.51, 0.51, 0.51};
  EXPECT_EQ(l2_lower_bound(sizes, unit_model()), 5u);
}

TEST(L2Test, SortedVariantValidatesOrder) {
  const std::vector<double> unsorted{0.1, 0.9};
  EXPECT_THROW((void)l2_lower_bound_sorted(unsorted, unit_model()), PreconditionError);
}

TEST(L2Test, RejectsNonPositiveSizes) {
  EXPECT_THROW((void)l1_lower_bound(std::vector<double>{0.0}, unit_model()),
               PreconditionError);
}

TEST(L2Test, CapacityAware) {
  const CostModel model{10.0, 1.0, 1e-9};
  const std::vector<double> sizes{6.0, 6.0, 6.0};
  EXPECT_EQ(l2_lower_bound(sizes, model), 3u);
}

}  // namespace
}  // namespace dbp
