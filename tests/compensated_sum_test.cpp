#include "core/compensated_sum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace dbp {
namespace {

TEST(CompensatedSumTest, StartsAtZero) {
  CompensatedSum sum;
  EXPECT_DOUBLE_EQ(sum.value(), 0.0);
}

TEST(CompensatedSumTest, SimpleAddSubtract) {
  CompensatedSum sum;
  sum.add(1.5);
  sum.add(2.5);
  sum.subtract(1.0);
  EXPECT_DOUBLE_EQ(sum.value(), 3.0);
}

TEST(CompensatedSumTest, InitialValueConstructor) {
  CompensatedSum sum(10.0);
  sum.add(0.5);
  EXPECT_DOUBLE_EQ(sum.value(), 10.5);
}

TEST(CompensatedSumTest, ResetRestoresExactZero) {
  CompensatedSum sum;
  for (int i = 0; i < 1000; ++i) sum.add(0.1);
  sum.reset();
  EXPECT_EQ(sum.value(), 0.0);
  sum.reset(42.0);
  EXPECT_EQ(sum.value(), 42.0);
}

TEST(CompensatedSumTest, ManySmallAdditionsStayExactish) {
  // 10^6 additions of 1e-3: naive summation drifts by ~1e-10; compensated
  // stays within a few ulps of 1000.
  CompensatedSum sum;
  for (int i = 0; i < 1'000'000; ++i) sum.add(1e-3);
  EXPECT_NEAR(sum.value(), 1000.0, 1e-12);
}

TEST(CompensatedSumTest, AddRemoveChurnReturnsToStart) {
  // The bin-level workload: repeatedly add and remove the same sizes.
  CompensatedSum level;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.001, 0.1);
  std::vector<double> sizes;
  for (int round = 0; round < 200; ++round) {
    sizes.clear();
    for (int i = 0; i < 50; ++i) {
      sizes.push_back(dist(rng));
      level.add(sizes.back());
    }
    for (double s : sizes) level.subtract(s);
  }
  EXPECT_NEAR(level.value(), 0.0, 1e-12);
}

TEST(CompensatedSumTest, CancellationOfLargeAndSmall) {
  CompensatedSum sum;
  sum.add(1e16);
  sum.add(1.0);
  sum.subtract(1e16);
  EXPECT_DOUBLE_EQ(sum.value(), 1.0);  // naive double arithmetic loses the 1.0
}

}  // namespace
}  // namespace dbp
