// Tests for the exec subsystem: the process-wide WorkerBudget, the
// WorkerLease arbitration, the ExecutionPolicy decision function, and the
// regression the subsystem exists to fix — a 1-worker budget must route
// estimate_opt_total down the sequential path (no OpenMP team, observable
// through the phase metrics), while still producing results bit-identical
// to the unconditional parallel path.
#include "exec/worker_budget.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "exec/execution_policy.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "opt/opt_total.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

/// Restores the runtime-default budget no matter how a test exits, so
/// budget mutations never leak into other suites in the same binary.
struct BudgetGuard {
  ~BudgetGuard() { exec::WorkerBudget::set(0); }
};

TEST(WorkerBudgetTest, SetAndClampAndRestore) {
  const BudgetGuard guard;
  const int runtime_default = exec::WorkerBudget::available();
  EXPECT_GE(runtime_default, 1);

  exec::WorkerBudget::set(3);
  EXPECT_EQ(exec::WorkerBudget::budget(), 3);
  EXPECT_EQ(exec::WorkerBudget::effective(), 3);

  // Requests above the cap clamp instead of oversubscribing.
  exec::WorkerBudget::set(exec::WorkerBudget::kMaxWorkers + 100);
  EXPECT_EQ(exec::WorkerBudget::budget(), exec::WorkerBudget::kMaxWorkers);

  // 0 (and anything negative) restores the runtime default.
  exec::WorkerBudget::set(0);
  EXPECT_EQ(exec::WorkerBudget::budget(), 0);
  EXPECT_EQ(exec::WorkerBudget::effective(), runtime_default);
  EXPECT_EQ(exec::WorkerBudget::available(), runtime_default);
}

TEST(WorkerBudgetTest, LeaseForcesSequentialAndNests) {
  const BudgetGuard guard;
  exec::WorkerBudget::set(8);
  EXPECT_EQ(exec::WorkerBudget::effective(), 8);
  EXPECT_FALSE(exec::WorkerLease::held());
  {
    const exec::WorkerLease outer;
    EXPECT_TRUE(exec::WorkerLease::held());
    EXPECT_EQ(exec::WorkerBudget::effective(), 1);
    {
      const exec::WorkerLease inner;  // leases nest; depth-counted
      EXPECT_EQ(exec::WorkerBudget::effective(), 1);
    }
    EXPECT_TRUE(exec::WorkerLease::held());
    EXPECT_EQ(exec::WorkerBudget::effective(), 1);
  }
  EXPECT_FALSE(exec::WorkerLease::held());
  EXPECT_EQ(exec::WorkerBudget::effective(), 8);
  // The lease gates effective(), not the configured budget.
  EXPECT_EQ(exec::WorkerBudget::budget(), 8);
}

TEST(ExecutionPolicyTest, ShouldParallelizeTruthTable) {
  using exec::ExecutionPolicy;
  const exec::ParallelWorkEstimate big{/*jobs=*/1000, /*work_units=*/100'000};
  const exec::ParallelWorkEstimate tiny{/*jobs=*/4, /*work_units=*/8};
  const exec::ParallelWorkEstimate one{/*jobs=*/1, /*work_units=*/1'000'000};

  // Fewer than two jobs can never fan out, whatever the policy says.
  EXPECT_FALSE(exec::should_parallelize(ExecutionPolicy::kParallel, one, 8));

  EXPECT_FALSE(exec::should_parallelize(ExecutionPolicy::kSequential, big, 8));
  EXPECT_TRUE(exec::should_parallelize(ExecutionPolicy::kParallel, tiny, 1));

  // Adaptive: needs workers, enough jobs, and enough work per the cutoffs.
  EXPECT_TRUE(exec::should_parallelize(ExecutionPolicy::kAdaptive, big, 8));
  EXPECT_FALSE(exec::should_parallelize(ExecutionPolicy::kAdaptive, big, 1));
  EXPECT_FALSE(exec::should_parallelize(ExecutionPolicy::kAdaptive, tiny, 8));
  const exec::ParallelWorkEstimate at_cutoff{exec::kMinParallelJobs,
                                             exec::kMinParallelWorkUnits};
  EXPECT_TRUE(exec::should_parallelize(ExecutionPolicy::kAdaptive, at_cutoff, 2));
  const exec::ParallelWorkEstimate below_jobs{exec::kMinParallelJobs - 1,
                                              exec::kMinParallelWorkUnits};
  EXPECT_FALSE(
      exec::should_parallelize(ExecutionPolicy::kAdaptive, below_jobs, 2));
  const exec::ParallelWorkEstimate below_units{exec::kMinParallelJobs,
                                               exec::kMinParallelWorkUnits - 1};
  EXPECT_FALSE(
      exec::should_parallelize(ExecutionPolicy::kAdaptive, below_units, 2));
}

TEST(ExecutionPolicyTest, NamesRoundTrip) {
  using exec::ExecutionPolicy;
  for (const ExecutionPolicy policy :
       {ExecutionPolicy::kSequential, ExecutionPolicy::kParallel,
        ExecutionPolicy::kAdaptive}) {
    EXPECT_EQ(exec::parse_execution_policy(exec::to_string(policy)), policy);
  }
  EXPECT_THROW((void)exec::parse_execution_policy("turbo"), PreconditionError);
  EXPECT_THROW((void)exec::parse_execution_policy(""), PreconditionError);
}

Instance uniform_instance(std::size_t items, std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.5;
  return generate_random_instance(config, seed);
}

/// The regression this PR fixes: under a 1-worker budget the adaptive
/// policy must take the sequential evaluation path — no OpenMP team, which
/// the opt_total.evaluate_* metrics make observable — while the result
/// stays bit-identical to the unconditional parallel path.
TEST(AdaptiveOptTotalTest, OneWorkerBudgetTakesSequentialPath) {
  const BudgetGuard guard;
  const Instance instance = uniform_instance(400, 99);
  const CostModel model{1.0, 1.0, 1e-9};

  exec::WorkerBudget::set(1);
  OptTotalOptions options;
  options.policy = exec::ExecutionPolicy::kAdaptive;
  obs::MetricsRegistry registry;
  OptTotalResult adaptive;
  {
    const obs::ObsScope scope(nullptr, &registry);
    adaptive = estimate_opt_total(instance, model, options);
  }
  EXPECT_FALSE(adaptive.evaluate_parallel);
  EXPECT_EQ(adaptive.evaluate_workers, 1);
  EXPECT_EQ(registry.counter_value("opt_total.evaluate_sequential"), 1u);
  EXPECT_FALSE(registry.counter_value("opt_total.evaluate_parallel").has_value());
  EXPECT_EQ(registry.gauge_value("opt_total.evaluate_workers"), 1.0);

  // Same budget, forced-parallel policy: the OpenMP region is entered (the
  // estimator reports the path it took) but the numbers cannot move.
  options.policy = exec::ExecutionPolicy::kParallel;
  const OptTotalResult parallel = estimate_opt_total(instance, model, options);
  EXPECT_TRUE(parallel.evaluate_parallel);
  EXPECT_EQ(adaptive.lower_cost, parallel.lower_cost);
  EXPECT_EQ(adaptive.upper_cost, parallel.upper_cost);
  EXPECT_EQ(adaptive.segments, parallel.segments);
  EXPECT_EQ(adaptive.distinct_snapshots, parallel.distinct_snapshots);
  EXPECT_EQ(adaptive.dedup_hits, parallel.dedup_hits);
}

/// A held lease must defeat even an explicit multi-worker budget: this is
/// how an outer sweep (dbp_sweep's cells) keeps inner estimators off the
/// OpenMP runtime.
TEST(AdaptiveOptTotalTest, LeaseKeepsAdaptiveSequentialUnderBigBudget) {
  const BudgetGuard guard;
  exec::WorkerBudget::set(8);
  const Instance instance = uniform_instance(300, 7);
  const CostModel model{1.0, 1.0, 1e-9};
  OptTotalOptions options;
  options.policy = exec::ExecutionPolicy::kAdaptive;

  const exec::WorkerLease lease;
  const OptTotalResult result = estimate_opt_total(instance, model, options);
  EXPECT_FALSE(result.evaluate_parallel);
  EXPECT_EQ(result.evaluate_workers, 1);
}

}  // namespace
}  // namespace dbp
