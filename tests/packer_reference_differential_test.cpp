// Differential tests for the flat-index strategy rewrites: the optimized
// "first-fit" (segment-tree threshold descent) and "best-fit" (dense
// position vectors + flat sorted residual index) against the deliberately
// naive "-reference" strategies (linear scans over a by-id bin list, the
// seed implementation's decision procedure). Over chaotic high-churn
// workloads the two must make bit-identical decisions — same assignment,
// same bin count, same exact total cost — and the optimized packers must
// round-trip save_snapshot/restore_snapshot byte-exactly mid-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "algo/factory.hpp"
#include "algo/packer.hpp"
#include "core/binary_io.hpp"
#include "core/types.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

/// Workload shapes chosen to stress the index structures differently:
/// steady poisson churn, synchronized burst arrivals (many simultaneous
/// opens), and a near-capacity mix where almost nothing shares a bin.
enum class Shape { kPoisson, kBursts, kNearCapacity };

Instance make_instance(Shape shape, std::uint64_t seed, std::size_t items) {
  RandomInstanceConfig config;
  config.item_count = items;
  switch (shape) {
    case Shape::kPoisson:
      config.arrival.rate = 4.0;
      break;
    case Shape::kBursts:
      config.arrival.kind = ArrivalModel::Kind::kBursts;
      config.arrival.burst_size = 16;
      config.arrival.burst_gap = 0.5;
      break;
    case Shape::kNearCapacity:
      config.arrival.rate = 8.0;
      config.size.min_fraction = 0.55;
      config.size.max_fraction = 0.95;
      break;
  }
  return generate_random_instance(config, seed);
}

class PackerReferenceDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::string, Shape, int>> {
 protected:
  [[nodiscard]] std::string optimized_name() const {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] std::string reference_name() const {
    return optimized_name() + "-reference";
  }
  [[nodiscard]] Instance instance() const {
    return make_instance(std::get<1>(GetParam()),
                         17 * static_cast<std::uint64_t>(std::get<2>(GetParam())) + 1,
                         600);
  }
};

TEST_P(PackerReferenceDifferentialTest, DecisionsAreBitIdentical) {
  const Instance inst = instance();
  const SimulationResult opt = simulate(inst, optimized_name(), unit_model());
  const SimulationResult ref = simulate(inst, reference_name(), unit_model());

  EXPECT_EQ(opt.assignment, ref.assignment)
      << optimized_name() << " diverged from " << reference_name();
  EXPECT_EQ(opt.bins_opened, ref.bins_opened);
  EXPECT_EQ(opt.max_open_bins, ref.max_open_bins);
  // Same placements in the same order integrate to the same cost bit for
  // bit — both runs execute the identical FP accounting sequence.
  EXPECT_EQ(opt.total_cost, ref.total_cost);
  ASSERT_EQ(opt.bin_usage.size(), ref.bin_usage.size());
  for (std::size_t b = 0; b < opt.bin_usage.size(); ++b) {
    EXPECT_EQ(opt.bin_usage[b].opened, ref.bin_usage[b].opened) << "bin " << b;
    EXPECT_EQ(opt.bin_usage[b].closed, ref.bin_usage[b].closed) << "bin " << b;
  }
}

TEST_P(PackerReferenceDifferentialTest, MidRunSnapshotRoundTripsByteExactly) {
  const Instance inst = instance();
  const std::vector<Event> events = build_event_sequence(inst);
  const std::span<const Event> all(events);
  const std::span<const Event> prefix = all.first(all.size() / 2);
  const std::span<const Event> suffix = all.subspan(all.size() / 2);

  // Run the optimized packer over the first half and checkpoint it.
  std::unique_ptr<Packer> original = make_packer(optimized_name(), unit_model());
  original->replay(inst, prefix);
  ByteWriter mid;
  original->save_snapshot(mid);

  // Restore into a fresh packer; its immediate re-save must reproduce the
  // checkpoint byte for byte (no state is lost or renormalized).
  std::unique_ptr<Packer> restored = make_packer(optimized_name(), unit_model());
  ByteReader reader(mid.data());
  restored->restore_snapshot(reader);
  ByteWriter resaved;
  restored->save_snapshot(resaved);
  EXPECT_EQ(mid.data(), resaved.data())
      << optimized_name() << ": restore+save changed the snapshot bytes";

  // Both continuations — and the reference strategy's straight run over the
  // whole sequence — must agree on the final bin mechanics exactly.
  original->replay(inst, suffix);
  restored->replay(inst, suffix);
  ByteWriter end_original;
  ByteWriter end_restored;
  original->save_snapshot(end_original);
  restored->save_snapshot(end_restored);
  EXPECT_EQ(end_original.data(), end_restored.data())
      << optimized_name() << ": the restored packer diverged after resuming";

  std::unique_ptr<Packer> reference = make_packer(reference_name(), unit_model());
  reference->replay(inst, all);
  EXPECT_EQ(original->bins().total_bins_opened(),
            reference->bins().total_bins_opened());
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<std::string, Shape, int>>& info) {
  std::string id = std::get<0>(info.param);
  for (char& c : id) {
    if (c == '-') c = '_';
  }
  switch (std::get<1>(info.param)) {
    case Shape::kPoisson: id += "_poisson"; break;
    case Shape::kBursts: id += "_bursts"; break;
    case Shape::kNearCapacity: id += "_nearcap"; break;
  }
  id += "_seed" + std::to_string(std::get<2>(info.param));
  return id;
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, PackerReferenceDifferentialTest,
    ::testing::Combine(::testing::Values(std::string("first-fit"),
                                         std::string("best-fit")),
                       ::testing::Values(Shape::kPoisson, Shape::kBursts,
                                         Shape::kNearCapacity),
                       ::testing::Values(1, 2, 3)),
    case_name);

}  // namespace
}  // namespace dbp
