// Concurrency stress for the engine's MPSC ring and submit/pump paths.
// Runs under `ctest -L stress` and the TSan CI leg (`-L 'stress|audit|chaos'`),
// where the Vyukov ring's acquire/release protocol and the pump-mutex
// handoff get checked for data races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/mpsc_ring.hpp"

namespace dbp::engine {
namespace {

TEST(EngineStressTest, MultiProducerRingPreservesPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  BoundedMpscRing<std::uint64_t> ring(1024);

  std::atomic<bool> done{false};
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (!done.load(std::memory_order_acquire) || !ring.empty()) {
      if (!ring.try_pop(value)) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t producer = value >> 32;
      const std::uint64_t seq = value & 0xFFFFFFFFULL;
      ASSERT_LT(producer, kProducers);
      // Per-producer FIFO: sequence numbers arrive strictly increasing.
      ASSERT_EQ(seq, last_seen[producer] + 1);
      last_seen[producer] = seq;
      ++popped;
    }
  });

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        while (!ring.try_push((p << 32) | i)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(popped, kProducers * kPerProducer);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[p], kPerProducer);
  }
}

TEST(EngineStressTest, ConcurrentSubmittersWithSelfPumpingBackpressure) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  EngineConfig config;
  config.shard_count = 4;
  config.ring_capacity = 64;  // small rings force submit() to self-pump
  config.spec = ServerSpec{1.0, 6.0};
  ShardedDispatchEngine eng(config);

  // Phase 1: every producer starts its own disjoint id range, all at t=0,
  // racing submit() against the self-pumping drains of other producers.
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&eng, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        eng.submit(start_event(p * kPerProducer + i, 0.125, 0.0));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  eng.drain();
  EXPECT_EQ(eng.active_sessions(), kProducers * kPerProducer);
  EXPECT_EQ(eng.merged_fault_stats().total_dropped_events(), 0u);

  // Phase 2: end everything at t=1, same contention pattern.
  producers.clear();
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&eng, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        eng.submit(end_event(p * kPerProducer + i, 1.0));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  eng.advance_epoch(1.0);
  EXPECT_EQ(eng.active_sessions(), 0u);
  EXPECT_EQ(eng.active_servers(), 0u);
  EXPECT_EQ(eng.events_applied(), 2 * kProducers * kPerProducer);
  EXPECT_EQ(eng.merged_fault_stats().total_dropped_events(), 0u);
  // Every server closed at t=1: the bill is frozen from here on.
  EXPECT_EQ(eng.rental_cost_dollars(1.0), eng.rental_cost_dollars(100.0));
}

}  // namespace
}  // namespace dbp::engine
