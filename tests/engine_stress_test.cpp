// Concurrency stress for the engine's MPSC ring and submit/pump paths.
// Runs under `ctest -L stress` and the TSan CI leg (`-L 'stress|audit|chaos'`),
// where the Vyukov ring's acquire/release protocol and the pump-mutex
// handoff get checked for data races.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/mpsc_ring.hpp"

namespace dbp::engine {
namespace {

TEST(EngineStressTest, MultiProducerRingPreservesPerProducerFifo) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  BoundedMpscRing<std::uint64_t> ring(1024);

  std::atomic<bool> done{false};
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (!done.load(std::memory_order_acquire) || !ring.empty()) {
      if (!ring.try_pop(value)) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t producer = value >> 32;
      const std::uint64_t seq = value & 0xFFFFFFFFULL;
      ASSERT_LT(producer, kProducers);
      // Per-producer FIFO: sequence numbers arrive strictly increasing.
      ASSERT_EQ(seq, last_seen[producer] + 1);
      last_seen[producer] = seq;
      ++popped;
    }
  });

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 1; i <= kPerProducer; ++i) {
        while (!ring.try_push((p << 32) | i)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(popped, kProducers * kPerProducer);
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[p], kPerProducer);
  }
}

TEST(EngineStressTest, ConcurrentSubmittersWithSelfPumpingBackpressure) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  EngineConfig config;
  config.shard_count = 4;
  config.ring_capacity = 64;  // small rings force submit() to self-pump
  config.spec = ServerSpec{1.0, 6.0};
  ShardedDispatchEngine eng(config);

  // Phase 1: every producer starts its own disjoint id range, all at t=0,
  // racing submit() against the self-pumping drains of other producers.
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&eng, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        eng.submit(start_event(p * kPerProducer + i, 0.125, 0.0));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  eng.drain();
  EXPECT_EQ(eng.active_sessions(), kProducers * kPerProducer);
  EXPECT_EQ(eng.merged_fault_stats().total_dropped_events(), 0u);

  // Phase 2: end everything at t=1, same contention pattern.
  producers.clear();
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&eng, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        eng.submit(end_event(p * kPerProducer + i, 1.0));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  eng.advance_epoch(1.0);
  EXPECT_EQ(eng.active_sessions(), 0u);
  EXPECT_EQ(eng.active_servers(), 0u);
  EXPECT_EQ(eng.events_applied(), 2 * kProducers * kPerProducer);
  EXPECT_EQ(eng.merged_fault_stats().total_dropped_events(), 0u);
  // Every server closed at t=1: the bill is frozen from here on.
  EXPECT_EQ(eng.rental_cost_dollars(1.0), eng.rental_cost_dollars(100.0));
}

TEST(EngineStressTest, SubmitBackoffScheduleIsBoundedExponential) {
  using std::chrono::microseconds;
  // Pure-yield spin window.
  static_assert(ShardedDispatchEngine::submit_backoff(1) == microseconds{0});
  static_assert(ShardedDispatchEngine::submit_backoff(
                    ShardedDispatchEngine::kSpinYieldRounds) == microseconds{0});
  // Exponential growth, doubling from 1us...
  static_assert(ShardedDispatchEngine::submit_backoff(
                    ShardedDispatchEngine::kSpinYieldRounds + 1) ==
                microseconds{1});
  static_assert(ShardedDispatchEngine::submit_backoff(
                    ShardedDispatchEngine::kSpinYieldRounds + 2) ==
                microseconds{2});
  static_assert(ShardedDispatchEngine::submit_backoff(
                    ShardedDispatchEngine::kSpinYieldRounds + 4) ==
                microseconds{8});
  // ...up to the hard cap, where it stays.
  constexpr microseconds kCap{1u << ShardedDispatchEngine::kMaxBackoffShift};
  static_assert(ShardedDispatchEngine::submit_backoff(
                    ShardedDispatchEngine::kSpinYieldRounds + 1 +
                    ShardedDispatchEngine::kMaxBackoffShift) == kCap);
  static_assert(ShardedDispatchEngine::submit_backoff(1'000'000) == kCap);
  SUCCEED();  // the assertions above are compile-time
}

TEST(EngineStressTest, ProducerBacksOffDuringSlowEpochInsteadOfSpinning) {
  // The regression: submit() spin-yielded while its shard's ring was full
  // and another thread held the pump for a long advance_epoch — a producer
  // burned a core for the whole epoch. hold_pump_for_test() is that slow
  // epoch idealized (and deterministic on any core count): with a full
  // 2-slot ring and the pump held, the producer MUST fall through the
  // 64-round yield window into the bounded backoff sleep. Release the pump
  // and every event still lands — backoff is timing-only.
  EngineConfig config;
  config.shard_count = 1;
  config.ring_capacity = 2;
  config.spec = ServerSpec{1.0, 6.0};
  ShardedDispatchEngine eng(config);

  std::unique_lock<std::mutex> slow_epoch = eng.hold_pump_for_test();

  constexpr std::uint64_t kEvents = 8;  // > ring capacity: the third blocks
  std::thread producer([&] {
    for (std::uint64_t id = 0; id < kEvents; ++id) {
      eng.submit(start_event(id, 0.1, 0.0));
    }
  });

  // The producer cannot make progress while the pump is held, so it must
  // reach the backoff path; bound the wait generously for slow CI.
  for (int spins = 0; eng.submit_backoffs() == 0 && spins < 5000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(eng.submit_backoffs(), 0u)
      << "producer never backed off under a held pump (spin regression)";

  slow_epoch.unlock();
  producer.join();
  eng.drain();
  EXPECT_EQ(eng.events_applied(), kEvents);
  EXPECT_EQ(eng.active_sessions(), kEvents);
  EXPECT_EQ(eng.merged_fault_stats().total_dropped_events(), 0u);
}

}  // namespace
}  // namespace dbp::engine
