#include "analysis/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

SimulationResult small_run(Instance* instance_out) {
  Instance instance;
  instance.add(0.0, 4.0, 0.9);
  instance.add(1.0, 2.0, 0.9);
  SimulationResult result = simulate(instance, "first-fit", unit_model());
  *instance_out = std::move(instance);
  return result;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(TimelineTest, StepFunctionCsv) {
  Instance instance;
  const SimulationResult result = small_run(&instance);
  std::stringstream out;
  write_step_function_csv(result.open_bins_over_time, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);  // header + 4 breakpoints
  EXPECT_EQ(lines[0], "time,value");
  EXPECT_EQ(lines[1], "0,1");
  EXPECT_EQ(lines[2], "1,2");
  EXPECT_EQ(lines[3], "2,1");
  EXPECT_EQ(lines[4], "4,0");
}

TEST(TimelineTest, BinUsageCsv) {
  Instance instance;
  const SimulationResult result = small_run(&instance);
  std::stringstream out;
  write_bin_usage_csv(result, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "bin,opened,closed,usage_length");
  EXPECT_EQ(lines[1], "0,0,4,4");
  EXPECT_EQ(lines[2], "1,1,2,1");
}

TEST(TimelineTest, AssignmentCsv) {
  Instance instance;
  const SimulationResult result = small_run(&instance);
  std::stringstream out;
  write_assignment_csv(instance, result, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "item,bin,arrival,departure,size");
  EXPECT_EQ(lines[1].substr(0, 4), "0,0,");
  EXPECT_EQ(lines[2].substr(0, 4), "1,1,");
}

TEST(TimelineTest, AssignmentCsvRejectsMismatch) {
  Instance instance;
  const SimulationResult result = small_run(&instance);
  Instance other;
  other.add(0.0, 1.0, 0.5);
  std::stringstream out;
  EXPECT_THROW(write_assignment_csv(other, result, out), PreconditionError);
}

TEST(TimelineTest, SampledOpenBinsCsv) {
  Instance instance;
  const SimulationResult result = small_run(&instance);
  std::stringstream out;
  write_sampled_open_bins_csv(result, 5, out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 6u);  // header + 5 samples over [0, 4]
  EXPECT_EQ(lines[0], "time,open_bins");
  EXPECT_EQ(lines[1], "0,1");
  EXPECT_EQ(lines[2], "1,2");
  EXPECT_EQ(lines[5], "4,0");
  EXPECT_THROW(write_sampled_open_bins_csv(result, 1, out), PreconditionError);
}

}  // namespace
}  // namespace dbp
