#include "algo/bin_manager.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(BinManagerTest, OpenAssignsSequentialIds) {
  BinManager manager(unit_model());
  EXPECT_EQ(manager.open_bin(0.0), 0u);
  EXPECT_EQ(manager.open_bin(1.0), 1u);
  EXPECT_EQ(manager.open_count(), 2u);
  EXPECT_EQ(manager.total_bins_opened(), 2u);
}

TEST(BinManagerTest, PlaceUpdatesLevelAndResidual) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.3}, bin);
  EXPECT_DOUBLE_EQ(manager.level(bin), 0.3);
  EXPECT_DOUBLE_EQ(manager.residual(bin), 0.7);
  manager.place({1, 0.0, 0.5}, bin);
  EXPECT_NEAR(manager.level(bin), 0.8, 1e-15);
  EXPECT_EQ(manager.item_count(bin), 2u);
  EXPECT_EQ(manager.active_item_count(), 2u);
}

TEST(BinManagerTest, PlaceRejectsOverflow) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.8}, bin);
  EXPECT_THROW(manager.place({1, 0.0, 0.3}, bin), PreconditionError);
  EXPECT_EQ(manager.item_count(bin), 1u);  // unchanged after failure
}

TEST(BinManagerTest, PlaceAllowsExactFill) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.5}, bin);
  EXPECT_NO_THROW(manager.place({1, 0.0, 0.5}, bin));
  EXPECT_NEAR(manager.level(bin), 1.0, 1e-15);
}

TEST(BinManagerTest, PlaceRejectsDuplicateItem) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.1}, bin);
  EXPECT_THROW(manager.place({0, 0.0, 0.1}, bin), PreconditionError);
}

TEST(BinManagerTest, PlaceRejectsUnknownOrClosedBin) {
  BinManager manager(unit_model());
  EXPECT_THROW(manager.place({0, 0.0, 0.1}, 0), PreconditionError);
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.1}, bin);
  manager.remove(0, 1.0);  // closes the bin
  EXPECT_THROW(manager.place({1, 1.0, 0.1}, bin), PreconditionError);
}

TEST(BinManagerTest, RemoveClosesEmptyBin) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.4}, bin);
  manager.place({1, 0.0, 0.4}, bin);
  const DepartureOutcome first = manager.remove(0, 2.0);
  EXPECT_EQ(first.bin, bin);
  EXPECT_FALSE(first.bin_closed);
  EXPECT_TRUE(manager.is_open(bin));
  const DepartureOutcome second = manager.remove(1, 3.0);
  EXPECT_TRUE(second.bin_closed);
  EXPECT_FALSE(manager.is_open(bin));
  EXPECT_EQ(manager.open_count(), 0u);
  EXPECT_DOUBLE_EQ(manager.usage(bin).opened, 0.0);
  EXPECT_DOUBLE_EQ(manager.usage(bin).closed, 3.0);
}

TEST(BinManagerTest, RemoveUnknownItemThrows) {
  BinManager manager(unit_model());
  EXPECT_THROW(manager.remove(42, 0.0), PreconditionError);
}

TEST(BinManagerTest, LevelResetsExactlyOnClose) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  for (ItemId i = 0; i < 1000; ++i) manager.place({i, 0.0, 1e-3}, bin);
  for (ItemId i = 0; i < 1000; ++i) manager.remove(i, 1.0);
  EXPECT_EQ(manager.level(bin), 0.0);  // exact zero, no fp residue
}

TEST(BinManagerTest, FitsIsToleranceAware) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  for (ItemId i = 0; i < 1000; ++i) manager.place({i, 0.0, 1e-3}, bin);
  // Bin is full up to fp noise; another milli-item must not fit.
  EXPECT_FALSE(manager.fits(1e-3, bin));
  EXPECT_TRUE(manager.fits(1e-3 / 2, bin) ==
              manager.model().fits(5e-4, manager.residual(bin)));
}

TEST(BinManagerTest, OpenBinsListsAscending) {
  BinManager manager(unit_model());
  const BinId a = manager.open_bin(0.0);
  const BinId b = manager.open_bin(0.0);
  const BinId c = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.1}, b);
  manager.remove(0, 1.0);  // closes b
  const auto open = manager.open_bins();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(open[0], a);
  EXPECT_EQ(open[1], c);
}

TEST(BinManagerTest, AssignmentHistorySurvivesDeparture) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({7, 0.0, 0.1}, bin);
  manager.remove(7, 1.0);
  ASSERT_TRUE(manager.assignment_of(7).has_value());
  EXPECT_EQ(*manager.assignment_of(7), bin);
  EXPECT_FALSE(manager.assignment_of(8).has_value());
}

TEST(BinManagerTest, ItemsInBin) {
  BinManager manager(unit_model());
  const BinId a = manager.open_bin(0.0);
  const BinId b = manager.open_bin(0.0);
  manager.place({2, 0.0, 0.1}, a);
  manager.place({0, 0.0, 0.1}, a);
  manager.place({1, 0.0, 0.1}, b);
  const auto in_a = manager.items_in(a);
  ASSERT_EQ(in_a.size(), 2u);
  EXPECT_EQ(in_a[0], 0u);  // sorted
  EXPECT_EQ(in_a[1], 2u);
}

TEST(BinManagerTest, ResetClearsEverything) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(0.0);
  manager.place({0, 0.0, 0.1}, bin);
  manager.reset();
  EXPECT_EQ(manager.total_bins_opened(), 0u);
  EXPECT_EQ(manager.open_count(), 0u);
  EXPECT_EQ(manager.active_item_count(), 0u);
  EXPECT_FALSE(manager.assignment_of(0).has_value());
}

TEST(BinManagerTest, UsageOfOpenBinIsUnbounded) {
  BinManager manager(unit_model());
  const BinId bin = manager.open_bin(5.0);
  EXPECT_FALSE(manager.usage(bin).is_closed());
  EXPECT_DOUBLE_EQ(manager.usage(bin).opened, 5.0);
}

}  // namespace
}  // namespace dbp
