#include "workload/transform.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

Instance sample_instance(std::uint64_t seed = 9) {
  RandomInstanceConfig config;
  config.item_count = 250;
  config.arrival.rate = 6.0;
  config.duration.max_length = 4.0;
  return generate_random_instance(config, seed);
}

TEST(TransformTest, ScaleTimeScalesEveryAlgorithmCostLinearly) {
  const Instance original = sample_instance();
  const Instance scaled = scale_time(original, 2.5, 7.0);
  for (const std::string name : {"first-fit", "best-fit", "next-fit"}) {
    const SimulationResult base = simulate(original, name, unit_model());
    const SimulationResult stretched = simulate(scaled, name, unit_model());
    EXPECT_NEAR(stretched.total_cost, 2.5 * base.total_cost,
                1e-9 * stretched.total_cost)
        << name;
    // Assignments are identical: decisions depend on order and sizes only.
    EXPECT_EQ(stretched.assignment, base.assignment) << name;
  }
}

TEST(TransformTest, ScaleTimeScalesOptToo) {
  const Instance original = sample_instance();
  const Instance scaled = scale_time(original, 3.0);
  const OptTotalResult base = estimate_opt_total(original, unit_model());
  const OptTotalResult stretched = estimate_opt_total(scaled, unit_model());
  EXPECT_NEAR(stretched.lower_cost, 3.0 * base.lower_cost, 1e-6);
  EXPECT_NEAR(stretched.upper_cost, 3.0 * base.upper_cost, 1e-6);
}

TEST(TransformTest, ScaleSizesWithCapacityPreservesAssignment) {
  const Instance original = sample_instance();
  const Instance scaled = scale_sizes(original, 4.0);
  const CostModel big{4.0, 1.0, 4e-9};  // capacity and tolerance scale along
  const SimulationResult base = simulate(original, "first-fit", unit_model());
  const SimulationResult rescaled = simulate(scaled, "first-fit", big);
  EXPECT_EQ(rescaled.assignment, base.assignment);
  EXPECT_NEAR(rescaled.total_cost, base.total_cost, 1e-9 * base.total_cost);
}

TEST(TransformTest, MuInvariantUnderTimeScaling) {
  const Instance original = sample_instance();
  const Instance scaled = scale_time(original, 10.0, -3.0);
  EXPECT_NEAR(compute_metrics(scaled).mu, compute_metrics(original).mu, 1e-9);
}

TEST(TransformTest, CropKeepsOnlyWindowOverlap) {
  Instance instance;
  instance.add(0.0, 2.0, 0.5);   // fully before window end, clipped at start
  instance.add(5.0, 9.0, 0.5);   // straddles window end
  instance.add(11.0, 12.0, 0.5); // outside
  const Instance cropped = crop(instance, {1.0, 8.0});
  ASSERT_EQ(cropped.size(), 2u);
  EXPECT_DOUBLE_EQ(cropped.item(0).arrival, 1.0);
  EXPECT_DOUBLE_EQ(cropped.item(0).departure, 2.0);
  EXPECT_DOUBLE_EQ(cropped.item(1).arrival, 5.0);
  EXPECT_DOUBLE_EQ(cropped.item(1).departure, 8.0);
}

TEST(TransformTest, ConcatenateSeparatesInTime) {
  Instance a;
  a.add(0.0, 2.0, 0.5);
  Instance b;
  b.add(100.0, 101.0, 0.5);
  const Instance joined = concatenate(a, b, 3.0);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_DOUBLE_EQ(joined.item(1).arrival, 5.0);  // 2 + gap 3
  EXPECT_DOUBLE_EQ(joined.item(1).departure, 6.0);
}

TEST(TransformTest, ConcatenatedCostIsSumOfParts) {
  const Instance a = sample_instance(1);
  const Instance b = sample_instance(2);
  const Instance joined = concatenate(a, b, 1.0);
  const SimulationResult cost_a = simulate(a, "first-fit", unit_model());
  const SimulationResult cost_b = simulate(b, "first-fit", unit_model());
  const SimulationResult cost_joined = simulate(joined, "first-fit", unit_model());
  // Disjoint in time: all bins from part a close before part b starts, so
  // the packing decomposes and costs add exactly.
  EXPECT_NEAR(cost_joined.total_cost, cost_a.total_cost + cost_b.total_cost,
              1e-9 * cost_joined.total_cost);
}

TEST(TransformTest, OverlayUnionsItems) {
  const Instance a = sample_instance(1);
  const Instance b = sample_instance(2);
  const Instance merged = overlay(a, b);
  EXPECT_EQ(merged.size(), a.size() + b.size());
  EXPECT_GE(total_demand_of(merged),
            total_demand_of(a) + total_demand_of(b) - 1e-9);
}

TEST(TransformTest, ReverseTimePreservesOptAndMetrics) {
  const Instance original = sample_instance();
  const Instance reversed = reverse_time(original);
  EXPECT_NEAR(compute_metrics(reversed).span, compute_metrics(original).span,
              1e-9);
  EXPECT_NEAR(compute_metrics(reversed).total_demand,
              compute_metrics(original).total_demand, 1e-9);
  const OptTotalResult fwd = estimate_opt_total(original, unit_model());
  const OptTotalResult bwd = estimate_opt_total(reversed, unit_model());
  EXPECT_NEAR(fwd.lower_cost, bwd.lower_cost, 1e-6 * fwd.lower_cost);
  EXPECT_NEAR(fwd.upper_cost, bwd.upper_cost, 1e-6 * fwd.upper_cost);
}

TEST(TransformTest, ReverseTwiceIsIdentity) {
  const Instance original = sample_instance();
  const Instance twice = reverse_time(reverse_time(original));
  ASSERT_EQ(twice.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(twice.items()[i].arrival, original.items()[i].arrival, 1e-9);
    EXPECT_NEAR(twice.items()[i].departure, original.items()[i].departure, 1e-9);
  }
}

TEST(TransformTest, Validation) {
  const Instance instance = sample_instance();
  EXPECT_THROW((void)scale_time(instance, 0.0), PreconditionError);
  EXPECT_THROW((void)scale_time(instance, -1.0), PreconditionError);
  EXPECT_THROW((void)scale_sizes(instance, 0.0), PreconditionError);
  EXPECT_THROW((void)crop(instance, {3.0, 3.0}), PreconditionError);
  EXPECT_THROW((void)concatenate(Instance{}, instance), PreconditionError);
  EXPECT_THROW((void)concatenate(instance, instance, -1.0), PreconditionError);
  EXPECT_THROW((void)reverse_time(Instance{}), PreconditionError);
}

}  // namespace
}  // namespace dbp
