// Property tests of the simulation substrate itself: accounting identities,
// the Any Fit contract, and cross-checks between independent derivations of
// the same quantity.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "algo/any_fit_packer.hpp"
#include "algo/strategies.hpp"
#include "core/metrics.hpp"
#include "core/step_function.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

RandomInstanceConfig sweep_config(std::uint64_t variant) {
  RandomInstanceConfig config;
  config.item_count = 350;
  config.arrival.rate = 5.0 + static_cast<double>(variant % 3) * 5.0;
  config.duration.max_length = 1.0 + static_cast<double>(variant % 5);
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.25 + 0.15 * static_cast<double>(variant % 4);
  return config;
}

using Cell = std::tuple<std::string, std::uint64_t>;

class SimulationPropertyTest : public ::testing::TestWithParam<Cell> {};

TEST_P(SimulationPropertyTest, AccountingIdentities) {
  const auto [algorithm, seed] = GetParam();
  const Instance instance = generate_random_instance(sweep_config(seed), seed);
  PackerOptions options;
  options.known_mu = compute_metrics(instance).mu;
  const SimulationResult result =
      simulate(instance, algorithm, unit_model(), options);

  // Dual accounting agrees (also DBP_CHECKed inside, belt and braces).
  EXPECT_NEAR(result.total_cost, result.total_cost_from_bins,
              1e-9 * result.total_cost);

  // Recompute n(t) from the assignment + instance, independently of the
  // BinManager's usage records: per bin, usage = union of item intervals.
  std::vector<IntervalSet> per_bin(result.bins_opened);
  {
    std::vector<std::vector<TimeInterval>> raw(result.bins_opened);
    for (const Item& item : instance.items()) {
      raw[static_cast<std::size_t>(result.assignment[item.id])].push_back(
          item.interval());
    }
    for (std::size_t b = 0; b < raw.size(); ++b) {
      per_bin[b] = IntervalSet(std::move(raw[b]));
    }
  }
  StepFunction recomputed;
  double recomputed_cost = 0.0;
  for (std::size_t b = 0; b < per_bin.size(); ++b) {
    ASSERT_FALSE(per_bin[b].empty());
    // A bin's usage period must be contiguous: it closes when empty and is
    // never reopened.
    EXPECT_EQ(per_bin[b].piece_count(), 1u) << "bin " << b;
    const TimeInterval usage{per_bin[b].min(), per_bin[b].max()};
    EXPECT_DOUBLE_EQ(usage.begin, result.bin_usage[b].opened);
    EXPECT_DOUBLE_EQ(usage.end, result.bin_usage[b].closed);
    recomputed.add_interval(usage);
    recomputed_cost += usage.length();
  }
  recomputed.finalize();
  EXPECT_NEAR(recomputed_cost, result.total_cost, 1e-9 * result.total_cost);
  EXPECT_EQ(recomputed.max_value(), result.max_open_bins);

  // Bin levels never exceed capacity: recheck from raw data at probe points
  // (the manager enforces this per placement; this is an end-to-end check).
  const InstanceMetrics metrics = compute_metrics(instance);
  for (const Time probe :
       {metrics.packing_period.begin + 0.1,
        0.5 * (metrics.packing_period.begin + metrics.packing_period.end),
        metrics.packing_period.end - 0.1}) {
    std::vector<double> level(result.bins_opened, 0.0);
    for (const Item& item : instance.items()) {
      if (item.active_at(probe)) {
        level[static_cast<std::size_t>(result.assignment[item.id])] += item.size;
      }
    }
    for (double l : level) EXPECT_LE(l, 1.0 + 1e-6);
  }

  EXPECT_GE(static_cast<std::int64_t>(result.bins_opened), result.max_open_bins);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimulationPropertyTest,
    ::testing::Combine(::testing::ValuesIn(all_algorithm_names()),
                       ::testing::Values(11u, 22u, 33u)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = std::get<0>(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

// The Any Fit contract, machine-checked: with paranoid mode on, the packer
// itself proves no fitting bin was declined before every bin opening.
class AnyFitContractTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(AnyFitContractTest, NeverOpensBinWhenOneFits) {
  const auto [name, seed] = GetParam();
  const Instance instance = generate_random_instance(sweep_config(seed), seed);
  const CostModel model = unit_model();
  std::unique_ptr<FitStrategy> strategy;
  if (name == "first-fit") strategy = std::make_unique<FirstFitStrategy>(model);
  if (name == "best-fit") strategy = std::make_unique<BestFitStrategy>(model);
  if (name == "worst-fit") strategy = std::make_unique<WorstFitStrategy>(model);
  if (name == "last-fit") strategy = std::make_unique<LastFitStrategy>(model);
  if (name == "random-fit") {
    strategy = std::make_unique<RandomFitStrategy>(model, seed);
  }
  if (name == "move-to-front-fit") {
    strategy = std::make_unique<MoveToFrontStrategy>(model);
  }
  ASSERT_NE(strategy, nullptr);
  AnyFitPacker packer(model, std::move(strategy));
  packer.set_paranoid(true);  // throws InvariantError on contract violation
  EXPECT_NO_THROW((void)simulate(instance, packer));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnyFitContractTest,
    ::testing::Combine(::testing::Values("first-fit", "best-fit", "worst-fit",
                                         "last-fit", "random-fit",
                                         "move-to-front-fit"),
                       ::testing::Values(7u, 77u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dbp
