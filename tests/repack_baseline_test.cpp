#include "opt/repack_baseline.hpp"

#include <gtest/gtest.h>

#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(RepackBaselineTest, EmptyInstance) {
  const RepackBaselineResult result = run_repack_baseline(Instance{}, unit_model());
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_EQ(result.max_bins, 0u);
}

TEST(RepackBaselineTest, SingleItemNoMigration) {
  Instance instance;
  instance.add(0.0, 5.0, 0.5);
  const RepackBaselineResult result = run_repack_baseline(instance, unit_model());
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_EQ(result.max_bins, 1u);
}

TEST(RepackBaselineTest, ConsolidatesTheoremOneConstruction) {
  // Repacking defeats the Theorem 1 adversary: after Delta the k survivors
  // merge into one bin, so cost ~ OPT while Any Fit pays k*mu*Delta.
  const auto built = build_anyfit_adversary({.k = 8, .mu = 8.0});
  const RepackBaselineResult repack =
      run_repack_baseline(built.instance, unit_model());
  const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
  EXPECT_NEAR(repack.total_cost, opt.upper_cost, 1e-9);
  EXPECT_GT(repack.migrations, 0u);  // the consolidation IS migration
  const SimulationResult ff = simulate(built.instance, "first-fit", unit_model());
  EXPECT_LT(repack.total_cost, ff.total_cost);
}

TEST(RepackBaselineTest, SandwichedByOptBounds) {
  RandomInstanceConfig config;
  config.item_count = 400;
  const Instance instance = generate_random_instance(config, 77);
  const RepackBaselineResult repack = run_repack_baseline(instance, unit_model());
  const OptTotalResult opt = estimate_opt_total(instance, unit_model());
  // FFD(active) >= OPT(active) pointwise, so the integral dominates the
  // OPT lower bound; FFD is also within 1.7x of OPT pointwise
  // (asymptotically 11/9), checked loosely here.
  EXPECT_GE(repack.total_cost, opt.lower_cost * (1.0 - 1e-9));
  EXPECT_LE(repack.total_cost, opt.lower_cost * 1.7 + 1e-9);
}

TEST(RepackBaselineTest, CostRateScales) {
  Instance instance;
  instance.add(0.0, 2.0, 0.5);
  const CostModel model{1.0, 4.0, 1e-9};
  EXPECT_DOUBLE_EQ(run_repack_baseline(instance, model).total_cost, 8.0);
}

TEST(RepackBaselineTest, DeterministicMigrationCount) {
  RandomInstanceConfig config;
  config.item_count = 300;
  const Instance instance = generate_random_instance(config, 5);
  const RepackBaselineResult a = run_repack_baseline(instance, unit_model());
  const RepackBaselineResult b = run_repack_baseline(instance, unit_model());
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.migrated_volume, b.migrated_volume);
  EXPECT_EQ(a.batches, b.batches);
}

TEST(RepackBaselineTest, StableWorkloadNeedsNoMigration) {
  // Items that arrive together and depart together in FFD order never
  // change bins between batches.
  Instance instance;
  instance.add(0.0, 10.0, 0.5);
  instance.add(0.0, 10.0, 0.5);
  instance.add(2.0, 8.0, 0.25);
  const RepackBaselineResult result = run_repack_baseline(instance, unit_model());
  EXPECT_EQ(result.migrations, 0u);
}

TEST(RepackBaselineTest, NeverCheaperThanOptButCheaperThanOnlineOnAdversary) {
  const auto built = build_anyfit_adversary({.k = 4, .mu = 4.0});
  const RepackBaselineResult repack =
      run_repack_baseline(built.instance, unit_model());
  const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
  EXPECT_GE(repack.total_cost, opt.lower_cost * (1.0 - 1e-9));
}

}  // namespace
}  // namespace dbp
