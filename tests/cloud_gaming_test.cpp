#include "workload/cloud_gaming.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/metrics.hpp"

namespace dbp {
namespace {

CloudGamingConfig small_config() {
  CloudGamingConfig config;
  config.horizon_hours = 6.0;
  config.peak_arrivals_per_minute = 1.0;
  return config;
}

TEST(CloudGamingTest, DefaultCatalogIsSane) {
  const auto catalog = default_game_catalog();
  EXPECT_EQ(catalog.size(), 8u);
  for (const GameProfile& game : catalog) {
    EXPECT_FALSE(game.name.empty());
    EXPECT_GT(game.gpu_fraction, 0.0);
    EXPECT_LE(game.gpu_fraction, 1.0);
    EXPECT_GT(game.popularity, 0.0);
    EXPECT_GT(game.mean_minutes, 0.0);
  }
}

TEST(CloudGamingTest, DeterministicUnderSeed) {
  const CloudGamingTrace a = generate_cloud_gaming_trace(small_config(), 11);
  const CloudGamingTrace b = generate_cloud_gaming_trace(small_config(), 11);
  ASSERT_EQ(a.instance.size(), b.instance.size());
  for (std::size_t i = 0; i < a.instance.size(); ++i) {
    EXPECT_EQ(a.instance.items()[i], b.instance.items()[i]);
  }
  EXPECT_EQ(a.game_of_item, b.game_of_item);
}

TEST(CloudGamingTest, SessionsRespectClampsAndHorizon) {
  const CloudGamingConfig config = small_config();
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 3);
  for (const Item& item : trace.instance.items()) {
    EXPECT_GE(item.arrival, 0.0);
    EXPECT_LT(item.arrival, config.horizon_hours * 60.0);
    EXPECT_GE(item.interval_length(), config.min_session_minutes - 1e-12);
    EXPECT_LE(item.interval_length(), config.max_session_minutes + 1e-12);
  }
}

TEST(CloudGamingTest, SizesComeFromCatalog) {
  const CloudGamingTrace trace = generate_cloud_gaming_trace(small_config(), 5);
  ASSERT_EQ(trace.game_of_item.size(), trace.instance.size());
  for (std::size_t i = 0; i < trace.instance.size(); ++i) {
    const GameProfile& game = trace.catalog[trace.game_of_item[i]];
    EXPECT_DOUBLE_EQ(trace.instance.items()[i].size, game.gpu_fraction);
  }
}

TEST(CloudGamingTest, MuIsBoundedByConfig) {
  const CloudGamingConfig config = small_config();
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 5);
  const InstanceMetrics metrics = compute_metrics(trace.instance);
  EXPECT_LE(metrics.mu,
            config.max_session_minutes / config.min_session_minutes + 1e-9);
}

TEST(CloudGamingTest, PopularGamesAppearMoreOften) {
  CloudGamingConfig config = small_config();
  config.horizon_hours = 48.0;
  config.catalog = {
      {"rare", 0.25, 0.5, 30.0, 0.3},
      {"hit", 0.25, 10.0, 30.0, 0.3},
  };
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 17);
  std::size_t hits = 0;
  for (std::size_t g : trace.game_of_item) hits += (g == 1);
  EXPECT_GT(hits, trace.instance.size() * 3 / 4);
}

TEST(CloudGamingTest, DiurnalPatternModulatesArrivals) {
  CloudGamingConfig config;
  config.horizon_hours = 24.0;
  config.peak_arrivals_per_minute = 4.0;
  config.diurnal_trough_ratio = 0.1;
  config.peak_hour = 20.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 23);
  // Count arrivals near the peak (19:00-21:00) vs near the trough
  // (07:00-09:00): the peak window must be busier.
  std::size_t peak = 0;
  std::size_t trough = 0;
  for (const Item& item : trace.instance.items()) {
    const double hour = item.arrival / 60.0;
    if (hour >= 19.0 && hour < 21.0) ++peak;
    if (hour >= 7.0 && hour < 9.0) ++trough;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(CloudGamingTest, ValidatesConfig) {
  CloudGamingConfig config = small_config();
  config.horizon_hours = 0.0;
  EXPECT_THROW((void)generate_cloud_gaming_trace(config, 0), PreconditionError);

  config = small_config();
  config.diurnal_trough_ratio = 0.0;
  EXPECT_THROW((void)generate_cloud_gaming_trace(config, 0), PreconditionError);

  config = small_config();
  config.catalog = {{"bad", 1.5, 1.0, 30.0, 0.3}};  // gpu fraction > 1
  EXPECT_THROW((void)generate_cloud_gaming_trace(config, 0), PreconditionError);

  config = small_config();
  config.min_session_minutes = 10.0;
  config.max_session_minutes = 5.0;
  EXPECT_THROW((void)generate_cloud_gaming_trace(config, 0), PreconditionError);
}

}  // namespace
}  // namespace dbp
