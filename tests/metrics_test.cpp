#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace dbp {
namespace {

Instance make_three_item_instance() {
  Instance instance;
  instance.add(0.0, 3.0, 0.5);   // len 3, demand 1.5
  instance.add(2.0, 5.0, 0.25);  // len 3, demand 0.75
  instance.add(7.0, 9.0, 1.0);   // len 2, demand 2.0
  return instance;
}

TEST(MetricsTest, SpanMatchesFigure1Semantics) {
  const Instance instance = make_three_item_instance();
  EXPECT_DOUBLE_EQ(span_of(instance), 7.0);  // [0,5) u [7,9)
}

TEST(MetricsTest, SpanOfEmptyListIsZero) {
  EXPECT_DOUBLE_EQ(span_of(std::span<const Item>{}), 0.0);
}

TEST(MetricsTest, IntervalUnion) {
  const Instance instance = make_three_item_instance();
  const IntervalSet set = interval_union_of(instance.items());
  EXPECT_EQ(set.piece_count(), 2u);
}

TEST(MetricsTest, TotalDemand) {
  const Instance instance = make_three_item_instance();
  EXPECT_DOUBLE_EQ(total_demand_of(instance), 1.5 + 0.75 + 2.0);
}

TEST(MetricsTest, ComputeMetricsAggregates) {
  const InstanceMetrics m = compute_metrics(make_three_item_instance());
  EXPECT_EQ(m.item_count, 3u);
  EXPECT_DOUBLE_EQ(m.min_interval_length, 2.0);
  EXPECT_DOUBLE_EQ(m.max_interval_length, 3.0);
  EXPECT_DOUBLE_EQ(m.mu, 1.5);
  EXPECT_DOUBLE_EQ(m.min_size, 0.25);
  EXPECT_DOUBLE_EQ(m.max_size, 1.0);
  EXPECT_DOUBLE_EQ(m.total_demand, 4.25);
  EXPECT_DOUBLE_EQ(m.span, 7.0);
  EXPECT_EQ(m.packing_period, (TimeInterval{0.0, 9.0}));
}

TEST(MetricsTest, ComputeMetricsOfEmptyThrows) {
  EXPECT_THROW((void)compute_metrics(std::span<const Item>{}), PreconditionError);
}

TEST(MetricsTest, MuOfUniformLengthsIsOne) {
  Instance instance;
  instance.add(0.0, 2.0, 0.5);
  instance.add(5.0, 7.0, 0.5);
  EXPECT_DOUBLE_EQ(compute_metrics(instance).mu, 1.0);
}

TEST(CostBoundsTest, PaperBoundsB1B2B3) {
  const Instance instance = make_three_item_instance();
  const CostModel model{1.0, 2.0, 1e-9};  // W = 1, C = 2
  const CostBounds bounds = compute_cost_bounds(instance, model);
  EXPECT_DOUBLE_EQ(bounds.demand_lower, 4.25 * 2.0 / 1.0);       // (b.1)
  EXPECT_DOUBLE_EQ(bounds.span_lower, 7.0 * 2.0);                // (b.2)
  EXPECT_DOUBLE_EQ(bounds.one_per_item_upper, (3.0 + 3.0 + 2.0) * 2.0);  // (b.3)
  EXPECT_DOUBLE_EQ(bounds.lower(), 14.0);
}

TEST(CostBoundsTest, CapacityScalesDemandBound) {
  const Instance instance = make_three_item_instance();
  const CostModel model{2.0, 1.0, 1e-9};  // W = 2
  const CostBounds bounds = compute_cost_bounds(instance, model);
  EXPECT_DOUBLE_EQ(bounds.demand_lower, 4.25 / 2.0);
}

TEST(CostBoundsTest, EmptyListGivesZeros) {
  const CostBounds bounds =
      compute_cost_bounds(std::span<const Item>{}, CostModel{});
  EXPECT_DOUBLE_EQ(bounds.demand_lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.span_lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.one_per_item_upper, 0.0);
}

TEST(CostBoundsTest, BoundsAreOrdered) {
  // (b.1), (b.2) <= (b.3) always.
  const Instance instance = make_three_item_instance();
  const CostBounds bounds = compute_cost_bounds(instance, CostModel{});
  EXPECT_LE(bounds.demand_lower, bounds.one_per_item_upper);
  EXPECT_LE(bounds.span_lower, bounds.one_per_item_upper);
}

}  // namespace
}  // namespace dbp
