// Recovery differential: for every snapshot-capable algorithm and several
// chaos-style workloads, interrupt a durable run at many cut points, run
// the full recovery protocol (checkpoint load + journal replay), finish the
// stream, and require the result to be bit-identical to an uninterrupted
// run — the durability tentpole's core guarantee, exercised end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "core/binary_io.hpp"
#include "durability/recovery.hpp"
#include "gaming/dispatcher.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

const CostModel kModel{1.0, 1.0, 1e-9};

class RecoveryDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("dbp_recovery_differential.") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] durability::DurabilityConfig config(
      const std::string& name) const {
    durability::DurabilityConfig config;
    config.dir = dir_ + "/" + name;
    config.checkpoint_every = 16;
    config.keep_checkpoints = 2;
    return config;
  }

  std::string dir_;
};

void feed_events(durability::DurableRun& run, const Instance& instance,
                 const std::vector<Event>& events, std::size_t from,
                 std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    const Item& item = instance.item(events[i].item);
    if (events[i].kind == EventKind::kArrival) {
      (void)run.apply_arrival({item.id, item.arrival, item.size});
    } else {
      run.apply_departure(item.id, item.departure);
    }
  }
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_cost_from_bins, b.total_cost_from_bins);
  EXPECT_EQ(a.max_open_bins, b.max_open_bins);
  EXPECT_EQ(a.bins_opened, b.bins_opened);
  EXPECT_EQ(a.assignment, b.assignment);
  ASSERT_EQ(a.bin_usage.size(), b.bin_usage.size());
  for (std::size_t i = 0; i < a.bin_usage.size(); ++i) {
    EXPECT_EQ(a.bin_usage[i].opened, b.bin_usage[i].opened);
    EXPECT_EQ(a.bin_usage[i].closed, b.bin_usage[i].closed);
  }
}

/// Interrupt at `cut`, recover, finish, compare bit-exact to `reference`.
void run_cut(const durability::DurabilityConfig& config,
             const Instance& instance, const std::vector<Event>& events,
             const std::string& algorithm, const PackerOptions& options,
             const SimulationResult& reference, std::size_t cut) {
  SCOPED_TRACE("cut=" + std::to_string(cut));
  std::filesystem::remove_all(config.dir);
  {
    durability::DurableRun run(config, kModel, algorithm, options);
    feed_events(run, instance, events, 0, cut);
    run.flush();
  }
  durability::RecoveryManager manager(config);
  durability::RecoveredState state = manager.recover();
  ASSERT_EQ(state.mode, durability::DurableMode::kSimulation);
  ASSERT_NE(state.run, nullptr);
  ASSERT_EQ(state.report.next_seq, cut);
  feed_events(*state.run, instance, events, cut, events.size());
  state.run->flush();

  SimulationResult result;
  result.algorithm = state.run->packer().name();
  result.packing_period = instance.packing_period();
  detail::finalize_accounting(result, instance, state.run->packer().bins());
  expect_identical(reference, result);
}

/// Chaos-style workloads in the spirit of fault_sim_test: steady Poisson,
/// simultaneous-arrival bursts, and exactly-representable dyadic sizes.
std::vector<Instance> chaos_instances() {
  std::vector<Instance> instances;
  {
    RandomInstanceConfig config;
    config.item_count = 60;
    instances.push_back(generate_random_instance(config, 11));
  }
  {
    RandomInstanceConfig config;
    config.item_count = 60;
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 12;
    config.arrival.burst_gap = 0.75;
    instances.push_back(generate_random_instance(config, 12));
  }
  {
    RandomInstanceConfig config;
    config.item_count = 60;
    config.size.kind = SizeModel::Kind::kDyadic;
    config.size.min_exponent = 1;
    config.size.max_exponent = 5;
    instances.push_back(generate_random_instance(config, 13));
  }
  return instances;
}

TEST_F(RecoveryDifferentialTest, EveryAlgorithmRecoversAtManyCutPoints) {
  PackerOptions options;
  options.seed = 5;
  options.known_mu = 16.0;
  const std::vector<Instance> instances = chaos_instances();

  for (const std::string& name : all_algorithm_names()) {
    if (!make_packer(name, kModel, options)->snapshot_supported()) continue;
    for (std::size_t w = 0; w < instances.size(); ++w) {
      SCOPED_TRACE(name + " workload=" + std::to_string(w));
      const Instance& instance = instances[w];
      const std::vector<Event> events = build_event_sequence(instance);
      const SimulationResult reference =
          simulate(instance, name, kModel, options);
      // Cuts around the checkpoint cadence (16): on a checkpoint, just
      // after one (journal replay of 1), mid-interval, and the extremes.
      for (const std::size_t cut :
           {std::size_t{0}, std::size_t{1}, std::size_t{16}, std::size_t{17},
            std::size_t{40}, events.size() - 1, events.size()}) {
        run_cut(config(name), instance, events, name, options, reference, cut);
      }
    }
  }
}

TEST_F(RecoveryDifferentialTest, DispatcherChaosRecoversAtEveryStride) {
  // Session churn plus periodic server crashes and rental failures: the
  // full fault-machinery state must survive recovery at every cut point.
  const ServerSpec spec{1.0, 1.0};
  FaultPolicy policy;
  policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  policy.rental_failure_rate = 0.1;
  policy.max_rental_retries = 2;

  struct Op {
    enum class Kind : std::uint8_t { kStart, kEnd, kFail } kind = Kind::kStart;
    std::uint64_t session = 0;
    double size = 0.0;
    Time time = 0.0;
  };
  std::vector<Op> ops;
  for (std::uint64_t i = 0; i < 48; ++i) {
    const Time t = static_cast<Time>(i);
    ops.push_back({Op::Kind::kStart, i, (i % 3 == 0) ? 0.7 : 0.35, t});
    if (i >= 3) ops.push_back({Op::Kind::kEnd, i - 3, 0.0, t + 0.5});
    if (i % 9 == 8) ops.push_back({Op::Kind::kFail, 0, 0.0, t + 0.75});
  }
  const auto apply = [&](auto& dispatcher, const BinManager& bins,
                         std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      const Op& op = ops[i];
      switch (op.kind) {
        case Op::Kind::kStart:
          (void)dispatcher.start_session(op.session, op.size, op.time);
          break;
        case Op::Kind::kEnd:
          dispatcher.end_session(op.session, op.time);
          break;
        case Op::Kind::kFail: {
          // Deterministic live target: the lowest open server id, or a
          // bogus id (counted as an anomaly) when the fleet is empty.
          const std::vector<BinId> open = bins.open_bins();
          (void)dispatcher.fail_server(
              open.empty() ? BinId{1'000'000'007} : open.front(), op.time);
          break;
        }
      }
    }
  };

  GameServerDispatcher reference(spec, "first-fit", {}, policy);
  apply(reference, reference.bins(), 0, ops.size());
  ByteWriter want;
  reference.save_state(want);

  for (std::size_t cut = 0; cut <= ops.size(); cut += 7) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const durability::DurabilityConfig cfg = config("dispatch");
    std::filesystem::remove_all(cfg.dir);
    {
      durability::DurableDispatcher durable(cfg, spec, "first-fit", {},
                                            policy);
      apply(durable, durable.dispatcher().bins(), 0, cut);
      durable.flush();
    }
    durability::RecoveryManager manager(cfg);
    durability::RecoveredState state = manager.recover();
    ASSERT_EQ(state.mode, durability::DurableMode::kDispatcher);
    ASSERT_NE(state.dispatcher, nullptr);
    ASSERT_EQ(state.report.next_seq, cut);
    apply(*state.dispatcher, state.dispatcher->dispatcher().bins(), cut,
          ops.size());
    EXPECT_TRUE(state.dispatcher->dispatcher().fault_stats() ==
                reference.fault_stats());
    ByteWriter got;
    state.dispatcher->dispatcher().save_state(got);
    EXPECT_EQ(got.data(), want.data());
  }
}

}  // namespace
}  // namespace dbp
