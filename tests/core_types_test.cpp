#include "core/types.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace dbp {
namespace {

TEST(CostModelTest, DefaultsAreValid) {
  CostModel model;
  EXPECT_NO_THROW(model.validate());
  EXPECT_DOUBLE_EQ(model.bin_capacity, 1.0);
  EXPECT_DOUBLE_EQ(model.cost_rate, 1.0);
}

TEST(CostModelTest, RejectsNonPositiveCapacity) {
  CostModel model;
  model.bin_capacity = 0.0;
  EXPECT_THROW(model.validate(), PreconditionError);
  model.bin_capacity = -1.0;
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(CostModelTest, RejectsNonFiniteCapacity) {
  CostModel model;
  model.bin_capacity = std::numeric_limits<double>::infinity();
  EXPECT_THROW(model.validate(), PreconditionError);
  model.bin_capacity = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(CostModelTest, RejectsNonPositiveCostRate) {
  CostModel model;
  model.cost_rate = 0.0;
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(CostModelTest, RejectsBadTolerance) {
  CostModel model;
  model.fit_tolerance = -1e-12;
  EXPECT_THROW(model.validate(), PreconditionError);
  model.fit_tolerance = model.bin_capacity;  // must be < capacity
  EXPECT_THROW(model.validate(), PreconditionError);
}

TEST(CostModelTest, FitsExactAndWithTolerance) {
  CostModel model;  // W = 1, tol = 1e-9
  EXPECT_TRUE(model.fits(0.5, 0.5));
  EXPECT_TRUE(model.fits(1.0, 1.0));
  EXPECT_TRUE(model.fits(0.5 + 5e-10, 0.5));   // within tolerance
  EXPECT_FALSE(model.fits(0.5 + 2e-9, 0.5));   // beyond tolerance
  EXPECT_FALSE(model.fits(0.3, 0.2));
}

TEST(CostModelTest, ZeroToleranceIsStrict) {
  CostModel model;
  model.fit_tolerance = 0.0;
  EXPECT_TRUE(model.fits(0.5, 0.5));
  EXPECT_FALSE(model.fits(std::nextafter(0.5, 1.0), 0.5));
}

TEST(TimeIntervalTest, LengthAndEmptiness) {
  EXPECT_DOUBLE_EQ((TimeInterval{1.0, 3.5}).length(), 2.5);
  EXPECT_FALSE((TimeInterval{1.0, 3.5}).empty());
  EXPECT_TRUE((TimeInterval{2.0, 2.0}).empty());
  EXPECT_TRUE((TimeInterval{3.0, 2.0}).empty());
}

TEST(TimeIntervalTest, ContainsIsHalfOpen) {
  const TimeInterval iv{1.0, 2.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_FALSE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
}

TEST(TimeIntervalTest, OverlapsRequiresPositiveMeasure) {
  const TimeInterval a{0.0, 1.0};
  EXPECT_TRUE(a.overlaps({0.5, 1.5}));
  EXPECT_FALSE(a.overlaps({1.0, 2.0}));  // touching, zero measure
  EXPECT_FALSE(a.overlaps({2.0, 3.0}));
  EXPECT_TRUE(a.overlaps({-1.0, 0.5}));
  EXPECT_TRUE(a.overlaps({0.25, 0.75}));  // nested
}

TEST(ErrorTest, RequireMacroThrowsWithMessage) {
  try {
    DBP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMacroThrowsInvariantError) {
  EXPECT_THROW(DBP_CHECK(false, "broken"), InvariantError);
  EXPECT_NO_THROW(DBP_CHECK(true, "fine"));
}

}  // namespace
}  // namespace dbp
