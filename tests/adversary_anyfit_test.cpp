// Theorem 1 / Figure 2: the Any Fit lower-bound construction must reproduce
// the paper's bin evolution and the ratio k*mu / (k + mu - 1) exactly.
#include "workload/adversary_anyfit.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(AnyFitAdversaryTest, EmitsKSquaredItems) {
  const auto built = build_anyfit_adversary({.k = 5, .mu = 4.0});
  EXPECT_EQ(built.instance.size(), 25u);
  const InstanceMetrics metrics = compute_metrics(built.instance);
  EXPECT_DOUBLE_EQ(metrics.mu, 4.0);
  EXPECT_DOUBLE_EQ(metrics.min_interval_length, 1.0);
  EXPECT_DOUBLE_EQ(metrics.max_size, 1.0 / 5.0);
}

TEST(AnyFitAdversaryTest, PredictedRatioFormula) {
  const auto built = build_anyfit_adversary({.k = 10, .mu = 8.0});
  EXPECT_DOUBLE_EQ(built.predicted_ratio, 10.0 * 8.0 / (10.0 + 8.0 - 1.0));
}

TEST(AnyFitAdversaryTest, FirstFitCostMatchesPrediction) {
  const auto built = build_anyfit_adversary({.k = 8, .mu = 4.0});
  const SimulationResult result =
      simulate(built.instance, "first-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 8u);
  EXPECT_EQ(result.max_open_bins, 8);
  EXPECT_NEAR(result.total_cost, built.predicted_anyfit_cost, 1e-9);
  // Figure 2: all k bins stay open the whole [0, mu*Delta].
  EXPECT_EQ(result.open_bins_over_time.value_at(0.5), 8);
  EXPECT_EQ(result.open_bins_over_time.value_at(3.9), 8);
  EXPECT_EQ(result.open_bins_over_time.value_at(4.0), 0);
}

TEST(AnyFitAdversaryTest, BestFitCostMatchesPrediction) {
  const auto built = build_anyfit_adversary({.k = 8, .mu = 4.0});
  const SimulationResult result =
      simulate(built.instance, "best-fit", unit_model());
  EXPECT_NEAR(result.total_cost, built.predicted_anyfit_cost, 1e-9);
}

TEST(AnyFitAdversaryTest, OptEstimatorMatchesPaperOpt) {
  const auto built = build_anyfit_adversary({.k = 6, .mu = 4.0});
  const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
  EXPECT_TRUE(opt.exact);  // equal sizes -> exact fast path
  EXPECT_NEAR(opt.lower_cost, built.predicted_opt_cost, 1e-9);
  EXPECT_NEAR(opt.upper_cost, built.predicted_opt_cost, 1e-9);
}

TEST(AnyFitAdversaryTest, MeasuredRatioMatchesEquationOne) {
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    const auto built = build_anyfit_adversary(
        {.k = k, .mu = 4.0, .delta = 1.0, .bin_capacity = 1.0});
    const SimulationResult ff = simulate(built.instance, "first-fit", unit_model());
    const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
    const double ratio = ff.total_cost / opt.upper_cost;
    EXPECT_NEAR(ratio, built.predicted_ratio, 1e-9) << "k = " << k;
  }
}

TEST(AnyFitAdversaryTest, RatioApproachesMuAsKGrows) {
  const double mu = 6.0;
  double previous = 0.0;
  for (const std::size_t k : {2u, 8u, 32u}) {
    const auto built = build_anyfit_adversary({.k = k, .mu = mu});
    EXPECT_GT(built.predicted_ratio, previous);
    previous = built.predicted_ratio;
  }
  const auto large = build_anyfit_adversary({.k = 64, .mu = mu});
  EXPECT_GT(large.predicted_ratio, mu - 0.6);
  EXPECT_LT(large.predicted_ratio, mu);
}

TEST(AnyFitAdversaryTest, MuEqualsOneDegeneratesToRatioOne) {
  const auto built = build_anyfit_adversary({.k = 4, .mu = 1.0});
  EXPECT_DOUBLE_EQ(built.predicted_ratio, 1.0);
  const SimulationResult ff = simulate(built.instance, "first-fit", unit_model());
  const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
  EXPECT_NEAR(ff.total_cost / opt.upper_cost, 1.0, 1e-9);
}

TEST(AnyFitAdversaryTest, DeltaAndCapacityScale) {
  const auto built = build_anyfit_adversary(
      {.k = 4, .mu = 2.0, .delta = 0.5, .bin_capacity = 8.0});
  const InstanceMetrics metrics = compute_metrics(built.instance);
  EXPECT_DOUBLE_EQ(metrics.min_interval_length, 0.5);
  EXPECT_DOUBLE_EQ(metrics.max_interval_length, 1.0);
  EXPECT_DOUBLE_EQ(metrics.max_size, 2.0);
  const CostModel model{8.0, 1.0, 1e-9};
  const SimulationResult ff = simulate(built.instance, "first-fit", model);
  EXPECT_EQ(ff.bins_opened, 4u);
}

TEST(AnyFitAdversaryTest, ValidatesConfig) {
  EXPECT_THROW((void)build_anyfit_adversary({.k = 0}), PreconditionError);
  EXPECT_THROW((void)build_anyfit_adversary({.k = 2, .mu = 0.5}), PreconditionError);
  EXPECT_THROW((void)build_anyfit_adversary({.k = 2, .mu = 2.0, .delta = 0.0}),
               PreconditionError);
}

TEST(AnyFitAdversaryTest, EveryAnyFitFamilyMemberSuffersTheBound) {
  // Theorem 1 applies to the whole family: FF, BF, WF, LF, MTF all keep k
  // bins open (random-fit too, but its grouping depends on the seed).
  const auto built = build_anyfit_adversary({.k = 6, .mu = 4.0});
  for (const std::string name :
       {"first-fit", "best-fit", "worst-fit", "last-fit", "move-to-front-fit"}) {
    const SimulationResult result = simulate(built.instance, name, unit_model());
    EXPECT_NEAR(result.total_cost, built.predicted_anyfit_cost, 1e-9) << name;
  }
}

}  // namespace
}  // namespace dbp
