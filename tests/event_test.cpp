#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dbp {
namespace {

TEST(EventOrderTest, TimeDominates) {
  const Event a{1.0, EventKind::kArrival, 0};
  const Event b{2.0, EventKind::kDeparture, 1};
  EXPECT_TRUE(event_before(a, b));
  EXPECT_FALSE(event_before(b, a));
}

TEST(EventOrderTest, DeparturesBeforeArrivalsAtEqualTime) {
  const Event arrival{1.0, EventKind::kArrival, 0};
  const Event departure{1.0, EventKind::kDeparture, 5};
  EXPECT_TRUE(event_before(departure, arrival));
  EXPECT_FALSE(event_before(arrival, departure));
}

TEST(EventOrderTest, ItemIdBreaksRemainingTies) {
  const Event a{1.0, EventKind::kArrival, 2};
  const Event b{1.0, EventKind::kArrival, 3};
  EXPECT_TRUE(event_before(a, b));
  EXPECT_FALSE(event_before(b, a));
  EXPECT_FALSE(event_before(a, a));  // irreflexive
}

TEST(EventSequenceTest, TwoEventsPerItemSorted) {
  Instance instance;
  instance.add(1.0, 3.0, 0.5);  // id 0
  instance.add(0.0, 1.0, 0.5);  // id 1
  const auto events = build_event_sequence(instance);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], (Event{0.0, EventKind::kArrival, 1}));
  // At t = 1: item 1 departs before item 0 arrives.
  EXPECT_EQ(events[1], (Event{1.0, EventKind::kDeparture, 1}));
  EXPECT_EQ(events[2], (Event{1.0, EventKind::kArrival, 0}));
  EXPECT_EQ(events[3], (Event{3.0, EventKind::kDeparture, 0}));
}

TEST(EventSequenceTest, SimultaneousArrivalsOrderedById) {
  Instance instance;
  instance.add(0.0, 1.0, 0.1);
  instance.add(0.0, 1.0, 0.1);
  instance.add(0.0, 1.0, 0.1);
  const auto events = build_event_sequence(instance);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].kind, EventKind::kArrival);
    EXPECT_EQ(events[i].item, static_cast<ItemId>(i));
  }
}

TEST(EventSequenceTest, EmptyInstance) {
  EXPECT_TRUE(build_event_sequence(Instance{}).empty());
}

TEST(EventSequenceTest, IsSortedForRandomishInput) {
  Instance instance;
  for (int i = 0; i < 100; ++i) {
    const double a = static_cast<double>((i * 37) % 50);
    instance.add(a, a + 1.0 + (i % 7), 0.1);
  }
  const auto events = build_event_sequence(instance);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(), event_before));
  EXPECT_EQ(events.size(), 200u);
}

}  // namespace
}  // namespace dbp
