#include "core/strfmt.hpp"

#include <gtest/gtest.h>

namespace dbp {
namespace {

TEST(StrfmtTest, BasicFormatting) {
  EXPECT_EQ(strfmt("x=%d", 42), "x=42");
  EXPECT_EQ(strfmt("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
}

TEST(StrfmtTest, EmptyAndNoArgs) {
  EXPECT_EQ(strfmt("%s", ""), "");
  EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(StrfmtTest, LongOutputNotTruncated) {
  const std::string big(10'000, 'x');
  const std::string result = strfmt("[%s]", big.c_str());
  EXPECT_EQ(result.size(), big.size() + 2);
  EXPECT_EQ(result.front(), '[');
  EXPECT_EQ(result.back(), ']');
}

TEST(StrfmtTest, RoundTripsDoublesAtFullPrecision) {
  const double value = 0.1234567890123456789;
  const std::string text = strfmt("%.17g", value);
  EXPECT_EQ(std::stod(text), value);
}

}  // namespace
}  // namespace dbp
