#include "gaming/fault_policy.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "gaming/dispatcher.hpp"

namespace dbp {
namespace {

ServerSpec basic_spec() { return ServerSpec{1.0, 6.0}; }  // $6/hour

FaultPolicy drop_policy() {
  FaultPolicy policy;
  policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  return policy;
}

/// Runs `call`, asserts it throws DispatchError of the expected kind and
/// that the message contains `needle` (e.g. the offending session id).
template <typename Call>
void expect_dispatch_error(Call&& call, DispatchErrorKind kind,
                           const std::string& needle) {
  try {
    call();
    FAIL() << "expected DispatchError " << to_string(kind);
  } catch (const DispatchError& error) {
    EXPECT_EQ(error.kind(), kind) << error.what();
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message '" << error.what() << "' lacks '" << needle << "'";
  }
}

TEST(FaultPolicyTest, ValidateRejectsBadParameters) {
  FaultPolicy rate;
  rate.rental_failure_rate = 1.5;
  EXPECT_THROW(rate.validate(), PreconditionError);
  FaultPolicy retries;
  retries.max_rental_retries = -1;
  EXPECT_THROW(retries.validate(), PreconditionError);
  FaultPolicy backoff;
  backoff.backoff_base_minutes = -0.5;
  EXPECT_THROW(backoff.validate(), PreconditionError);
  EXPECT_NO_THROW(FaultPolicy{}.validate());
}

// Satellite (b): duplicate starts and unknown ends raise typed errors that
// name the offending session id.
TEST(DispatchErrorTest, DuplicateStartCarriesKindAndId) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(7042, 0.5, 0.0);
  expect_dispatch_error(
      [&] { dispatcher.start_session(7042, 0.5, 1.0); },
      DispatchErrorKind::kDuplicateStart, "7042");
  // The rejection must not have corrupted state.
  EXPECT_EQ(dispatcher.active_sessions(), 1u);
  EXPECT_EQ(dispatcher.fault_stats().duplicate_starts, 1u);
}

TEST(DispatchErrorTest, UnknownEndCarriesKindAndId) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 0.0);
  expect_dispatch_error([&] { dispatcher.end_session(9931, 1.0); },
                        DispatchErrorKind::kUnknownSession, "9931");
  EXPECT_EQ(dispatcher.fault_stats().unknown_ends, 1u);
}

// Satellite (b): the non-decreasing-time contract is enforced on every
// entry point, and remains a PreconditionError for legacy catch sites.
TEST(DispatchErrorTest, TimeOrderViolationsAreTyped) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.5, 10.0);
  expect_dispatch_error([&] { dispatcher.start_session(2, 0.5, 5.0); },
                        DispatchErrorKind::kTimeOrderViolation, "2");
  expect_dispatch_error([&] { dispatcher.end_session(1, 5.0); },
                        DispatchErrorKind::kTimeOrderViolation, "1");
  expect_dispatch_error([&] { dispatcher.fail_server(BinId{0}, 5.0); },
                        DispatchErrorKind::kTimeOrderViolation, "5");
  EXPECT_EQ(dispatcher.fault_stats().time_order_violations, 3u);
  // DispatchError IS-A PreconditionError (legacy compatibility).
  EXPECT_THROW(dispatcher.end_session(1, 5.0), PreconditionError);
}

TEST(DispatchErrorTest, InvalidSizesAreTyped) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  expect_dispatch_error([&] { dispatcher.start_session(1, nan, 0.0); },
                        DispatchErrorKind::kInvalidSize, "1");
  expect_dispatch_error([&] { dispatcher.start_session(2, -0.5, 0.0); },
                        DispatchErrorKind::kInvalidSize, "2");
  expect_dispatch_error([&] { dispatcher.start_session(3, 0.0, 0.0); },
                        DispatchErrorKind::kInvalidSize, "3");
  expect_dispatch_error([&] { dispatcher.start_session(4, 1.5, 0.0); },
                        DispatchErrorKind::kInvalidSize, "4");
  EXPECT_EQ(dispatcher.fault_stats().invalid_sizes, 4u);
}

TEST(FaultPolicyTest, DropAndCountReturnsSentinelInsteadOfThrowing) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit", {}, drop_policy());
  const BinId server = dispatcher.start_session(1, 0.5, 0.0);
  EXPECT_NE(server, kNoServer);
  EXPECT_EQ(dispatcher.start_session(1, 0.5, 1.0), kNoServer);  // duplicate
  EXPECT_EQ(dispatcher.start_session(2, -1.0, 2.0), kNoServer); // bad size
  // Dropped events never advance the clock, so the reference time for the
  // violation below is still t=0.
  EXPECT_EQ(dispatcher.start_session(3, 0.5, -1.0), kNoServer); // time travel
  EXPECT_NO_THROW(dispatcher.end_session(777, 3.0));            // unknown id
  const DispatcherFaultStats& stats = dispatcher.fault_stats();
  EXPECT_EQ(stats.duplicate_starts, 1u);
  EXPECT_EQ(stats.invalid_sizes, 1u);
  EXPECT_EQ(stats.time_order_violations, 1u);
  EXPECT_EQ(stats.unknown_ends, 1u);
  EXPECT_EQ(stats.total_dropped_events(), 4u);
  // The dispatcher keeps working after the dropped garbage.
  EXPECT_EQ(dispatcher.active_sessions(), 1u);
  EXPECT_NE(dispatcher.start_session(4, 0.5, 4.0), kNoServer);
  EXPECT_EQ(dispatcher.active_sessions(), 2u);
}

TEST(FaultPolicyTest, FailServerRedispatchesOrphans) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  const BinId server = dispatcher.start_session(1, 0.4, 0.0);
  EXPECT_EQ(dispatcher.start_session(2, 0.4, 1.0), server);
  const std::size_t redispatched = dispatcher.fail_server(server, 30.0);
  EXPECT_EQ(redispatched, 2u);
  // Both sessions survived the crash on a freshly rented server.
  EXPECT_EQ(dispatcher.active_sessions(), 2u);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
  EXPECT_EQ(dispatcher.servers_ever_rented(), 2u);
  const DispatcherFaultStats& stats = dispatcher.fault_stats();
  EXPECT_EQ(stats.servers_crashed, 1u);
  EXPECT_EQ(stats.sessions_redispatched, 2u);
  EXPECT_EQ(stats.sessions_lost_on_crash, 0u);
  dispatcher.end_session(1, 60.0);
  dispatcher.end_session(2, 60.0);
  // Bill: crashed server [0, 30) + replacement [30, 60) = 1 hour = $6.
  EXPECT_DOUBLE_EQ(dispatcher.rental_cost_dollars(60.0), 6.0);
}

TEST(FaultPolicyTest, FailServerRejectsUnknownServer) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  dispatcher.start_session(1, 0.4, 0.0);
  expect_dispatch_error([&] { dispatcher.fail_server(BinId{42}, 1.0); },
                        DispatchErrorKind::kUnknownServer, "42");
  EXPECT_EQ(dispatcher.fault_stats().unknown_servers, 1u);
  // A crashed server is no longer active: failing it again is unknown.
  const BinId server = BinId{0};
  dispatcher.fail_server(server, 2.0);
  expect_dispatch_error([&] { dispatcher.fail_server(server, 3.0); },
                        DispatchErrorKind::kUnknownServer, "0");
}

TEST(FaultPolicyTest, FleetCapShedsSmallerSessions) {
  FaultPolicy policy = drop_policy();
  policy.max_fleet_servers = 1;
  GameServerDispatcher dispatcher(basic_spec(), "first-fit", {}, policy);
  dispatcher.start_session(1, 0.3, 0.0);
  dispatcher.start_session(2, 0.3, 1.0);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
  // 0.9 fits nowhere; renting a second server is forbidden by the cap, so
  // both smaller sessions are shed to make room.
  EXPECT_NE(dispatcher.start_session(3, 0.9, 2.0), kNoServer);
  EXPECT_EQ(dispatcher.active_sessions(), 1u);
  EXPECT_EQ(dispatcher.active_servers(), 1u);
  EXPECT_EQ(dispatcher.fault_stats().sessions_shed, 2u);
  // Now a small arrival cannot shed the bigger resident: rejected.
  EXPECT_EQ(dispatcher.start_session(4, 0.5, 3.0), kNoServer);
  EXPECT_EQ(dispatcher.fault_stats().sessions_rejected_cap, 1u);
  EXPECT_EQ(dispatcher.active_sessions(), 1u);
}

TEST(FaultPolicyTest, FleetCapUnsetNeverSheds) {
  GameServerDispatcher dispatcher(basic_spec(), "first-fit");
  for (std::uint64_t id = 0; id < 8; ++id) {
    dispatcher.start_session(id, 0.9, static_cast<Time>(id));
  }
  EXPECT_EQ(dispatcher.active_servers(), 8u);
  EXPECT_EQ(dispatcher.fault_stats().sessions_shed, 0u);
}

TEST(FaultPolicyTest, RentalRetryExhaustionRejectsSession) {
  FaultPolicy policy = drop_policy();
  policy.rental_failure_rate = 1.0;  // provider hard down
  policy.max_rental_retries = 2;
  policy.backoff_base_minutes = 0.5;
  GameServerDispatcher dispatcher(basic_spec(), "first-fit", {}, policy);
  EXPECT_EQ(dispatcher.start_session(1, 0.5, 0.0), kNoServer);
  const DispatcherFaultStats& stats = dispatcher.fault_stats();
  EXPECT_EQ(stats.rental_attempts_failed, 3u);  // 1 try + 2 retries
  EXPECT_EQ(stats.sessions_rejected_rental, 1u);
  // Backoff before each retry: 0.5 * 2^0 + 0.5 * 2^1 = 1.5 minutes.
  EXPECT_DOUBLE_EQ(stats.backoff_minutes, 1.5);
  EXPECT_EQ(dispatcher.active_sessions(), 0u);
  EXPECT_EQ(dispatcher.active_servers(), 0u);
}

TEST(FaultPolicyTest, RentalFailuresOnlyAffectNewRentals) {
  // A session that fits an already-rented server never touches the flaky
  // provider, so it cannot be rejected.
  FaultPolicy policy = drop_policy();
  policy.rental_failure_rate = 1.0;
  policy.max_rental_retries = 0;
  GameServerDispatcher reliable(basic_spec(), "first-fit");
  const BinId server = reliable.start_session(1, 0.5, 0.0);
  EXPECT_NE(server, kNoServer);

  GameServerDispatcher flaky(basic_spec(), "first-fit", {}, policy);
  EXPECT_EQ(flaky.start_session(1, 0.5, 0.0), kNoServer);
  // No server was ever rented, so there is nothing to share.
  EXPECT_EQ(flaky.servers_ever_rented(), 0u);
}

TEST(FaultPolicyTest, RentalFailuresAreSeedDeterministic) {
  FaultPolicy policy = drop_policy();
  policy.rental_failure_rate = 0.5;
  policy.max_rental_retries = 0;
  policy.seed = 321;
  const auto run = [&policy] {
    GameServerDispatcher dispatcher(basic_spec(), "first-fit", {}, policy);
    std::vector<bool> rejected;
    for (std::uint64_t id = 0; id < 32; ++id) {
      rejected.push_back(dispatcher.start_session(id, 0.9,
                                                  static_cast<Time>(id)) ==
                         kNoServer);
    }
    return rejected;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPolicyTest, CrashLossesAreCountedNotThrown) {
  // When the replacement rental fails during re-dispatch, fail_server must
  // absorb the rejection (even in throw mode) and count the orphan as lost.
  // The rental stream is seed-deterministic, so scan for a seed where the
  // initial rental succeeds but the post-crash one fails.
  FaultPolicy policy;  // kThrow mode
  policy.rental_failure_rate = 0.5;
  policy.max_rental_retries = 0;
  bool exercised = false;
  for (std::uint64_t seed = 0; seed < 64 && !exercised; ++seed) {
    policy.seed = seed;
    GameServerDispatcher dispatcher(basic_spec(), "first-fit", {}, policy);
    try {
      dispatcher.start_session(1, 0.6, 0.0);
    } catch (const DispatchError&) {
      continue;  // setup rental failed under this seed; try the next
    }
    std::size_t redispatched = 0;
    EXPECT_NO_THROW(redispatched = dispatcher.fail_server(BinId{0}, 1.0));
    if (redispatched == 0) {
      EXPECT_EQ(dispatcher.fault_stats().sessions_lost_on_crash, 1u);
      EXPECT_EQ(dispatcher.active_sessions(), 0u);
      // The throw policy is restored after the crash recovery.
      EXPECT_THROW(dispatcher.end_session(1, 2.0), DispatchError);
      exercised = true;
    }
  }
  EXPECT_TRUE(exercised) << "no seed in [0, 64) produced a lost orphan";
}

}  // namespace
}  // namespace dbp
