// Regression test for deterministic, ordering-stable serialized output:
// two identical runs must produce byte-identical trace exports and metrics
// dumps once wall-clock timing fields are excluded
// (export_jsonl(out, false) / write_text(out, false)). This pins down both
// the sorted-key export order and the absence of any other run-to-run
// nondeterminism in the observability pipeline.
#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "obs/run_tracer.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

namespace dbp {
namespace {

Instance make_instance() {
  Instance instance;
  std::uint64_t state = 0x243F6A8885A308D3ULL;
  for (std::size_t i = 0; i < 150; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(state >> 11) /
                     static_cast<double>(1ULL << 53);
    const Time arrival = u * 60.0;
    instance.add(arrival, arrival + 0.5 + u * 12.0, 0.05 + 0.9 * u);
  }
  return instance;
}

/// One full traced + metered run; returns every serialized artifact the
/// pipeline can emit, with timing fields excluded.
std::string run_once(const std::string& algorithm) {
  const Instance instance = make_instance();
  const CostModel model{};
  obs::RunTracer tracer;
  obs::MetricsRegistry metrics;
  std::ostringstream out;
  {
    obs::ObsScope scope(&tracer, &metrics);
    const SimulationResult sim = simulate(instance, algorithm, model);
    const OptTotalResult opt = estimate_opt_total(instance, model, {});
    out.precision(17);
    out << sim.total_cost << '\n'
        << sim.bins_opened << '\n'
        << opt.lower_cost << ' ' << opt.upper_cost << '\n';
  }
  tracer.export_jsonl(out, /*include_timings=*/false);
  metrics.write_text(out, /*include_timings=*/false);
  return out.str();
}

TEST(DeterminismOutput, ByteIdenticalAcrossRuns) {
  for (const char* algorithm : {"first-fit", "modified-first-fit"}) {
    SCOPED_TRACE(algorithm);
    const std::string first = run_once(algorithm);
    const std::string second = run_once(algorithm);
    EXPECT_GT(first.size(), 0u);
    EXPECT_EQ(first, second);
  }
}

TEST(DeterminismOutput, MetricsDumpExcludesTimingsOnRequest) {
  // Two registries whose only difference is the recorded durations must
  // dump identically without timings — and differ with them.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("runs").add(3);
  b.counter("runs").add(3);
  a.timer("phase").record_ms(1.25);
  b.timer("phase").record_ms(97.5);

  std::ostringstream a_bare;
  std::ostringstream b_bare;
  a.write_text(a_bare, false);
  b.write_text(b_bare, false);
  EXPECT_EQ(a_bare.str(), b_bare.str());
  EXPECT_NE(a_bare.str().find("timer"), std::string::npos);
  EXPECT_NE(a_bare.str().find("count 1"), std::string::npos);

  std::ostringstream a_full;
  std::ostringstream b_full;
  a.write_text(a_full);
  b.write_text(b_full);
  EXPECT_NE(a_full.str(), b_full.str());
}

TEST(DeterminismOutput, TraceExportIsSortedBySequence) {
  obs::RunTracer tracer;
  for (int i = 0; i < 5; ++i) {
    obs::TraceRecord record;
    record.kind = obs::TraceKind::kBinOpen;
    record.bin = static_cast<BinId>(i);
    tracer.record(std::move(record));
  }
  std::ostringstream out;
  tracer.export_jsonl(out, false);
  const std::string text = out.str();
  std::size_t last = 0;
  for (int i = 0; i < 5; ++i) {
    const std::string needle = "\"seq\": " + std::to_string(i) + ",";
    const std::size_t pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos) << needle << " missing:\n" << text;
    EXPECT_GT(pos, last);
    last = pos;
  }
}

}  // namespace
}  // namespace dbp
