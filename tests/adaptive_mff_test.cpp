#include "algo/adaptive_mff.hpp"

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(AdaptiveMffTest, StartsAtPaperDefaultK8) {
  AdaptiveMffPacker packer(unit_model());
  EXPECT_DOUBLE_EQ(packer.mu_estimate(), 1.0);
  EXPECT_DOUBLE_EQ(packer.threshold(), 1.0 / 8.0);  // mu_hat + 7 = 8
}

TEST(AdaptiveMffTest, EstimateTracksCompletedItems) {
  AdaptiveMffPacker packer(unit_model());
  packer.on_arrival({0, 0.0, 0.3});
  packer.on_arrival({1, 0.0, 0.3});
  EXPECT_DOUBLE_EQ(packer.mu_estimate(), 1.0);  // nothing completed yet
  packer.on_departure(0, 1.0);                   // length 1
  EXPECT_DOUBLE_EQ(packer.mu_estimate(), 1.0);
  packer.on_departure(1, 4.0);  // length 4 -> mu_hat = 4
  EXPECT_DOUBLE_EQ(packer.mu_estimate(), 4.0);
  EXPECT_DOUBLE_EQ(packer.threshold(), 1.0 / 11.0);
}

TEST(AdaptiveMffTest, ClassificationUsesCurrentThreshold) {
  AdaptiveMffPacker packer(unit_model());
  // With threshold 1/8, size 0.1 is "small"; learn mu = 15 -> threshold
  // 1/22, so a later 0.1 item is "large" and must not share the old small
  // pool bin even though it would fit.
  const BinId small_bin = packer.on_arrival({0, 0.0, 0.1});
  packer.on_arrival({1, 0.0, 0.05});  // keeps the small bin open
  packer.on_departure(0, 1.0);        // length 1
  packer.on_arrival({2, 1.0, 0.3});
  packer.on_departure(2, 16.0);  // length 15 -> mu_hat = 15
  ASSERT_GT(packer.mu_estimate(), 8.0);
  const BinId next = packer.on_arrival({3, 16.0, 0.1});
  EXPECT_NE(next, small_bin);  // now classified large: separate pool
}

TEST(AdaptiveMffTest, FactoryAndSimulatorIntegration) {
  RandomInstanceConfig config;
  config.item_count = 500;
  config.duration.max_length = 6.0;
  const Instance instance = generate_random_instance(config, 19);
  const SimulationResult result =
      simulate(instance, "adaptive-mff", unit_model());
  EXPECT_EQ(result.algorithm, "adaptive-mff");
  EXPECT_GT(result.bins_opened, 0u);
  EXPECT_NEAR(result.total_cost, result.total_cost_from_bins,
              1e-9 * result.total_cost);
}

TEST(AdaptiveMffTest, ConvergesTowardKnownMuBehaviour) {
  // After a long prefix, mu_hat equals the true mu, and the classification
  // threshold matches modified-first-fit-known-mu's.
  RandomInstanceConfig config;
  config.item_count = 2000;
  config.duration.min_length = 1.0;
  config.duration.max_length = 5.0;
  const Instance instance = generate_random_instance(config, 23);
  AdaptiveMffPacker packer(unit_model());
  const SimulationResult result = simulate(instance, packer);
  (void)result;
  EXPECT_NEAR(packer.mu_estimate(), 5.0, 0.2);
  EXPECT_NEAR(packer.threshold(), 1.0 / (packer.mu_estimate() + 7.0), 1e-12);
}

TEST(AdaptiveMffTest, CostStaysWithinFfGeneralBound) {
  // No bound is *proven* for the adaptive variant, but it interleaves two
  // First Fit pools, and empirically stays within the FF guarantee.
  RandomInstanceConfig config;
  config.item_count = 800;
  config.duration.max_length = 4.0;
  const Instance instance = generate_random_instance(config, 29);
  const SimulationResult adaptive =
      simulate(instance, "adaptive-mff", unit_model());
  const CostBounds closed = compute_cost_bounds(instance, unit_model());
  EXPECT_LE(adaptive.total_cost,
            (2.0 * 4.0 + 13.0) * std::max(closed.demand_lower, closed.span_lower));
}

TEST(AdaptiveMffTest, UnknownDepartureThrows) {
  AdaptiveMffPacker packer(unit_model());
  EXPECT_THROW(packer.on_departure(5, 1.0), PreconditionError);
}

}  // namespace
}  // namespace dbp
