#include "algo/size_classed_packer.hpp"

#include <gtest/gtest.h>

#include "algo/strategies.hpp"
#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

TEST(SizeClassedPackerTest, ClassIndexing) {
  auto mff = make_modified_first_fit(unit_model(), 8.0);
  // Boundary at W/8 = 0.125; small = [0, 0.125), large = [0.125, 1].
  EXPECT_EQ(mff->class_of(0.01), 0u);
  EXPECT_EQ(mff->class_of(0.1249), 0u);
  EXPECT_EQ(mff->class_of(0.125), 1u);  // "equal to or larger than W/k"
  EXPECT_EQ(mff->class_of(0.9), 1u);
  EXPECT_EQ(mff->class_count(), 2u);
}

TEST(SizeClassedPackerTest, SmallAndLargePoolsAreSeparate) {
  auto mff = make_modified_first_fit(unit_model(), 8.0);
  const BinId small_bin = mff->on_arrival({0, 0.0, 0.05});
  const BinId large_bin = mff->on_arrival({1, 0.0, 0.2});
  EXPECT_NE(small_bin, large_bin);
  // Another small item: goes to the small pool's bin even though the large
  // bin has more residual room.
  EXPECT_EQ(mff->on_arrival({2, 0.0, 0.05}), small_bin);
  // Another large item that would fit the small bin must not go there.
  EXPECT_EQ(mff->on_arrival({3, 0.0, 0.5}), large_bin);
  EXPECT_EQ(mff->class_of_bin(small_bin), 0u);
  EXPECT_EQ(mff->class_of_bin(large_bin), 1u);
}

TEST(SizeClassedPackerTest, FirstFitWithinEachPool) {
  auto mff = make_modified_first_fit(unit_model(), 2.0);  // boundary 0.5
  mff->on_arrival({0, 0.0, 0.5});  // large bin A (level .5)
  mff->on_arrival({1, 0.0, 0.5});  // large bin A (exact fill)
  mff->on_arrival({2, 0.0, 0.6});  // large bin B
  EXPECT_EQ(mff->bins().total_bins_opened(), 2u);
  mff->on_arrival({3, 0.0, 0.4});  // small pool: new bin C
  EXPECT_EQ(mff->bins().total_bins_opened(), 3u);
  EXPECT_EQ(mff->on_arrival({4, 0.0, 0.4}), 2u);  // joins bin C (first fit)
}

TEST(SizeClassedPackerTest, DeparturesRouteToOwningPool) {
  auto mff = make_modified_first_fit(unit_model(), 8.0);
  const BinId small_bin = mff->on_arrival({0, 0.0, 0.05});
  mff->on_arrival({1, 0.0, 0.2});
  mff->on_departure(0, 1.0);
  EXPECT_FALSE(mff->bins().is_open(small_bin));
  // New small item opens a new small bin (closed bins never reused).
  EXPECT_NE(mff->on_arrival({2, 1.0, 0.05}), small_bin);
}

TEST(SizeClassedPackerTest, NameIncludesParameters) {
  EXPECT_EQ(make_modified_first_fit(unit_model(), 8.0)->name(),
            "modified-first-fit(k=8)");
  EXPECT_EQ(make_modified_first_fit_known_mu(unit_model(), 3.0)->name(),
            "modified-first-fit(mu=3 known)");
  EXPECT_EQ(make_harmonic_first_fit(unit_model(), 4)->name(),
            "harmonic-first-fit(K=4)");
}

TEST(SizeClassedPackerTest, KnownMuUsesKEqualMuPlus7) {
  // k = mu + 7 = 10 -> boundary W/10.
  auto mff = make_modified_first_fit_known_mu(unit_model(), 3.0);
  EXPECT_EQ(mff->class_of(0.0999), 0u);
  EXPECT_EQ(mff->class_of(0.1001), 1u);
}

TEST(SizeClassedPackerTest, HarmonicClassBoundaries) {
  auto packer = make_harmonic_first_fit(unit_model(), 4);
  // Boundaries: 1/4, 1/3, 1/2 -> classes [0,1/4), [1/4,1/3), [1/3,1/2), [1/2,1].
  EXPECT_EQ(packer->class_count(), 4u);
  EXPECT_EQ(packer->class_of(0.2), 0u);
  EXPECT_EQ(packer->class_of(0.26), 1u);
  EXPECT_EQ(packer->class_of(0.4), 2u);
  EXPECT_EQ(packer->class_of(0.7), 3u);
}

TEST(SizeClassedPackerTest, HarmonicSeparatesClasses) {
  auto packer = make_harmonic_first_fit(unit_model(), 3);
  const BinId a = packer->on_arrival({0, 0.0, 0.6});   // class [1/2, 1]
  const BinId b = packer->on_arrival({1, 0.0, 0.34});  // class [1/3, 1/2)
  const BinId c = packer->on_arrival({2, 0.0, 0.1});   // class [0, 1/3)
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(packer->bins().total_bins_opened(), 3u);
}

TEST(SizeClassedPackerTest, InvalidParametersThrow) {
  EXPECT_THROW((void)make_modified_first_fit(unit_model(), 1.0), PreconditionError);
  EXPECT_THROW((void)make_modified_first_fit(unit_model(), 0.5), PreconditionError);
  EXPECT_THROW((void)make_modified_first_fit_known_mu(unit_model(), 0.5),
               PreconditionError);
  EXPECT_THROW((void)make_harmonic_first_fit(unit_model(), 1), PreconditionError);
}

TEST(SizeClassedPackerTest, BoundariesMustBeStrictlyIncreasing) {
  const auto factory = [](const CostModel& m) -> std::unique_ptr<FitStrategy> {
    return std::make_unique<FirstFitStrategy>(m);
  };
  EXPECT_THROW(SizeClassedPacker(unit_model(), "x", {0.5, 0.5}, factory),
               PreconditionError);
  EXPECT_THROW(SizeClassedPacker(unit_model(), "x", {0.5, 0.2}, factory),
               PreconditionError);
  EXPECT_THROW(SizeClassedPacker(unit_model(), "x", {0.0}, factory),
               PreconditionError);
  EXPECT_THROW(SizeClassedPacker(unit_model(), "x", {1.5}, factory),
               PreconditionError);
  EXPECT_NO_THROW(SizeClassedPacker(unit_model(), "x", {0.25, 0.5}, factory));
}

TEST(SizeClassedPackerTest, OversizeItemRejected) {
  auto mff = make_modified_first_fit(unit_model(), 8.0);
  EXPECT_THROW(mff->on_arrival({0, 0.0, 1.1}), PreconditionError);
}

}  // namespace
}  // namespace dbp
