// Unit tests for the durability subsystem: journal framing and torn-tail
// repair, atomic checkpoints, packer snapshot round-trips, and the
// dispatcher retry/backoff state surviving checkpoint/restore exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "core/binary_io.hpp"
#include "core/error.hpp"
#include "durability/checkpoint.hpp"
#include "durability/file_io.hpp"
#include "durability/journal.hpp"
#include "durability/recovery.hpp"
#include "gaming/dispatcher.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

const CostModel kModel{1.0, 1.0, 1e-9};

/// Per-test scratch directory under the system temp root, wiped on both
/// sides of the test so reruns never see stale durability files.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("dbp_durability_test.") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

std::vector<durability::JournalEvent> sample_events(std::size_t count) {
  std::vector<durability::JournalEvent> events(count);
  for (std::size_t i = 0; i < count; ++i) {
    events[i].seq = i;
    events[i].kind = (i % 2 == 0) ? durability::JournalEventKind::kArrival
                                  : durability::JournalEventKind::kDeparture;
    events[i].time = 0.25 * static_cast<double>(i);
    events[i].subject = 1000 + i;
    events[i].size = 0.125;
  }
  return events;
}

void write_journal(const std::string& path,
                   const std::vector<durability::JournalEvent>& events,
                   std::uint64_t stream_id = 7) {
  durability::JournalWriter writer(path, stream_id);
  for (const durability::JournalEvent& event : events) writer.append(event);
  writer.flush();
}

void flip_byte(const std::string& path, std::uint64_t at) {
  std::vector<std::uint8_t> bytes = durability::detail::read_file(path);
  ASSERT_LT(at, bytes.size());
  bytes[static_cast<std::size_t>(at)] ^= 0x40U;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---- journal -------------------------------------------------------------

TEST_F(DurabilityTest, JournalRoundTripsEventsExactly) {
  const auto events = sample_events(9);
  write_journal(path("j"), events, 42);
  const durability::JournalScan scan = durability::scan_journal(path("j"));
  EXPECT_EQ(scan.stream_id, 42u);
  EXPECT_EQ(scan.events, events);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, durability::detail::file_size(path("j")));
}

TEST_F(DurabilityTest, TornTailTruncationAtEveryByte) {
  // Exhaustive: cut the file at every possible byte. Below the header the
  // scan must refuse; everywhere else it must yield exactly the records
  // that fit, and truncate_journal must repair to a clean journal.
  const auto events = sample_events(5);
  write_journal(path("full"), events);
  const std::vector<std::uint8_t> bytes =
      durability::detail::read_file(path("full"));
  ASSERT_EQ((bytes.size() - durability::kJournalHeaderBytes) % 5, 0u);
  const std::size_t record = (bytes.size() - durability::kJournalHeaderBytes) / 5;

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    if (cut < durability::kJournalHeaderBytes) {
      EXPECT_THROW((void)durability::scan_journal_bytes(prefix),
                   CorruptionError)
          << "cut=" << cut;
      continue;
    }
    const durability::JournalScan scan = durability::scan_journal_bytes(prefix);
    const std::size_t whole = (cut - durability::kJournalHeaderBytes) / record;
    ASSERT_EQ(scan.events.size(), whole) << "cut=" << cut;
    for (std::size_t i = 0; i < whole; ++i) {
      EXPECT_EQ(scan.events[i], events[i]);
    }
    EXPECT_EQ(scan.valid_bytes,
              durability::kJournalHeaderBytes + whole * record);
    EXPECT_EQ(scan.torn_tail, cut > scan.valid_bytes) << "cut=" << cut;

    // Repair: write the cut file, truncate the tail, rescan clean.
    std::ofstream out(path("cut"), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(cut));
    out.close();
    durability::truncate_journal(path("cut"), scan);
    const durability::JournalScan repaired =
        durability::scan_journal(path("cut"));
    EXPECT_FALSE(repaired.torn_tail);
    EXPECT_EQ(repaired.events, scan.events);
  }
}

TEST_F(DurabilityTest, JournalRecordCorruptionEndsValidPrefix) {
  const auto events = sample_events(6);
  write_journal(path("j"), events);
  const std::size_t record =
      (durability::detail::file_size(path("j")) -
       durability::kJournalHeaderBytes) /
      6;
  // Damage record 3's payload: records 0-2 stay, the rest is a torn tail.
  flip_byte(path("j"), durability::kJournalHeaderBytes + 3 * record + 10);
  const durability::JournalScan scan = durability::scan_journal(path("j"));
  ASSERT_EQ(scan.events.size(), 3u);
  EXPECT_TRUE(scan.torn_tail);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(scan.events[i], events[i]);
}

TEST_F(DurabilityTest, JournalHeaderCorruptionIsRefused) {
  write_journal(path("j"), sample_events(3));
  flip_byte(path("j"), 9);  // inside the header's stream-id field
  EXPECT_THROW((void)durability::scan_journal(path("j")), CorruptionError);
}

TEST_F(DurabilityTest, JournalSequenceBreakIsRefusedNotTruncated) {
  // Remove a middle record: every remaining record is CRC-valid, but the
  // seq order breaks — that cannot be a crash artifact, so the whole file
  // is refused rather than silently accepting the prefix.
  const auto events = sample_events(5);
  write_journal(path("j"), events);
  std::vector<std::uint8_t> bytes = durability::detail::read_file(path("j"));
  const std::size_t record = (bytes.size() - durability::kJournalHeaderBytes) / 5;
  const auto start =
      static_cast<long>(durability::kJournalHeaderBytes + 2 * record);
  bytes.erase(bytes.begin() + start,
              bytes.begin() + start + static_cast<long>(record));
  EXPECT_THROW((void)durability::scan_journal_bytes(bytes), CorruptionError);
}

// ---- checkpoints ---------------------------------------------------------

TEST_F(DurabilityTest, CheckpointRoundTripsAtomically) {
  durability::CheckpointData data;
  data.stream_id = 11;
  data.next_seq = 640;
  data.payload = {1, 2, 3, 250, 251};
  const std::string written = durability::write_checkpoint(dir_, data);
  EXPECT_EQ(written, dir_ + "/" + durability::checkpoint_file_name(640));

  const durability::CheckpointData loaded = durability::load_checkpoint(written);
  EXPECT_EQ(loaded.stream_id, 11u);
  EXPECT_EQ(loaded.next_seq, 640u);
  EXPECT_EQ(loaded.payload, data.payload);

  // No temp residue: the write went temp -> fsync -> rename.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp");
  }
}

TEST_F(DurabilityTest, CheckpointCorruptionIsRefused) {
  durability::CheckpointData data;
  data.stream_id = 1;
  data.next_seq = 5;
  data.payload = std::vector<std::uint8_t>(64, 0xAB);
  const std::string written = durability::write_checkpoint(dir_, data);
  flip_byte(written, durability::detail::file_size(written) - 3);
  EXPECT_THROW((void)durability::load_checkpoint(written), CorruptionError);
}

TEST_F(DurabilityTest, CheckpointStaleNameIsRefused) {
  // A checkpoint copied under a different seq's name (stale-header
  // impersonation) must be detected by the name/header cross-check.
  durability::CheckpointData data;
  data.stream_id = 1;
  data.next_seq = 5;
  data.payload = {9, 9, 9};
  const std::string written = durability::write_checkpoint(dir_, data);
  const std::string impostor =
      dir_ + "/" + durability::checkpoint_file_name(6);
  std::filesystem::copy_file(written, impostor);
  EXPECT_THROW((void)durability::load_checkpoint(impostor), CorruptionError);
  EXPECT_NO_THROW((void)durability::load_checkpoint(written));
}

TEST_F(DurabilityTest, PruneKeepsNewestCheckpointsAndDropsTmp) {
  for (std::uint64_t seq : {10, 20, 30, 40}) {
    durability::CheckpointData data;
    data.stream_id = 1;
    data.next_seq = seq;
    data.payload = {1};
    (void)durability::write_checkpoint(dir_, data);
  }
  { std::ofstream stale(path("ckpt-zzz.dbpc.tmp")); stale << "junk"; }
  durability::prune_checkpoints(dir_, 2);
  const auto entries = durability::list_checkpoints(dir_);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].next_seq, 40u);
  EXPECT_EQ(entries[1].next_seq, 30u);
  EXPECT_FALSE(std::filesystem::exists(path("ckpt-zzz.dbpc.tmp")));
}

// ---- binary io -----------------------------------------------------------

TEST(ByteIoTest, RoundTripsEveryFieldKindBitExactly) {
  ByteWriter out;
  out.u8(0xFE);
  out.u32(0xDEADBEEFU);
  out.u64(0x0123456789ABCDEFULL);
  out.f64(-0.0);
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.boolean(true);
  out.str("packing");
  ByteReader in(out.data());
  EXPECT_EQ(in.u8(), 0xFEu);
  EXPECT_EQ(in.u32(), 0xDEADBEEFU);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFULL);
  const double neg_zero = in.f64();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(neg_zero),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_TRUE(in.boolean());
  EXPECT_EQ(in.str(), "packing");
  EXPECT_NO_THROW(in.expect_done());
}

TEST(ByteIoTest, ReaderRefusesOverrunAndTrailingBytes) {
  ByteWriter out;
  out.u32(7);
  ByteReader short_read(out.data());
  EXPECT_THROW((void)short_read.u64(), CorruptionError);

  ByteReader trailing(out.data());
  (void)trailing.u8();
  EXPECT_THROW(trailing.expect_done(), CorruptionError);

  ByteWriter bad_str;
  bad_str.u64(1'000'000);  // claims a megabyte that is not there
  ByteReader reader(bad_str.data());
  EXPECT_THROW((void)reader.str(), CorruptionError);
}

// ---- packer snapshots ----------------------------------------------------

std::vector<std::uint8_t> snapshot_of(const Packer& packer) {
  ByteWriter out;
  packer.save_snapshot(out);
  return out.take();
}

/// Differential over every snapshot-capable algorithm: snapshot mid-run,
/// restore into a fresh packer, finish both, and require identical final
/// snapshots (which cover the full decision state, not just the bins).
TEST(PackerSnapshotTest, MidRunRestoreContinuesBitIdentically) {
  RandomInstanceConfig config;
  config.item_count = 120;
  const Instance instance = generate_random_instance(config, 17);
  const std::vector<Event> events = build_event_sequence(instance);
  PackerOptions options;
  options.seed = 3;
  options.known_mu = 16.0;

  for (const std::string& name : all_algorithm_names()) {
    SCOPED_TRACE(name);
    auto original = make_packer(name, kModel, options);
    if (!original->snapshot_supported()) continue;

    const std::size_t split = events.size() / 2;
    const auto feed = [&](Packer& packer, std::size_t from, std::size_t to) {
      for (std::size_t i = from; i < to; ++i) {
        const Item& item = instance.item(events[i].item);
        if (events[i].kind == EventKind::kArrival) {
          (void)packer.on_arrival({item.id, item.arrival, item.size});
        } else {
          packer.on_departure(item.id, item.departure);
        }
      }
    };
    feed(*original, 0, split);
    const std::vector<std::uint8_t> mid = snapshot_of(*original);

    auto restored = make_packer(name, kModel, options);
    ByteReader in(mid);
    restored->restore_snapshot(in);
    EXPECT_EQ(snapshot_of(*restored), mid);

    feed(*original, split, events.size());
    feed(*restored, split, events.size());
    EXPECT_EQ(snapshot_of(*restored), snapshot_of(*original));
    EXPECT_EQ(restored->bins().open_count(), 0u);
  }
}

TEST(PackerSnapshotTest, ClairvoyantPackersDeclineSnapshots) {
  auto packer = make_packer("align-departures-fit", kModel);
  EXPECT_FALSE(packer->snapshot_supported());
  ByteWriter out;
  EXPECT_THROW(packer->save_snapshot(out), PreconditionError);
}

// ---- dispatcher retry/backoff round-trip (satellite: bounded-retry fix) --

/// Drives rentals that consume the rental RNG: every full-size session
/// needs a fresh server, and with rental_failure_rate > 0 each rental draws
/// a random attempt pattern and accumulates backoff_minutes.
void run_rental_burst(GameServerDispatcher& dispatcher, std::uint64_t base_id,
                      Time base_time, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const Time t = base_time + static_cast<Time>(i);
    (void)dispatcher.start_session(base_id + i, 1.0, t);
    dispatcher.end_session(base_id + i, t + 0.5);
  }
}

TEST(DispatcherRetryStateTest, BackoffAccumulatorsRoundTripExactly) {
  const ServerSpec spec{1.0, 1.0};
  FaultPolicy policy;
  policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  policy.rental_failure_rate = 0.5;
  policy.max_rental_retries = 2;
  policy.backoff_base_minutes = 0.5;

  GameServerDispatcher original(spec, "first-fit", {}, policy);
  run_rental_burst(original, 1, 0.0, 24);
  const DispatcherFaultStats mid_stats = original.fault_stats();
  // The pinned seed must actually exercise the retry machinery, otherwise
  // this test proves nothing about the accumulators.
  ASSERT_GT(mid_stats.rental_attempts_failed, 0u);
  ASSERT_GT(mid_stats.backoff_minutes, 0.0);

  ByteWriter out;
  original.save_state(out);
  const std::vector<std::uint8_t> mid = out.take();

  GameServerDispatcher restored(spec, "first-fit", {}, policy);
  ByteReader in(mid);
  restored.restore_state(in);

  // Exact round-trip: counters and the accumulated backoff double, ==.
  EXPECT_EQ(restored.fault_stats().rental_attempts_failed,
            mid_stats.rental_attempts_failed);
  EXPECT_EQ(restored.fault_stats().sessions_rejected_rental,
            mid_stats.sessions_rejected_rental);
  EXPECT_EQ(restored.fault_stats().backoff_minutes, mid_stats.backoff_minutes);
  EXPECT_TRUE(restored.fault_stats() == mid_stats);

  // Continuation: both halves must see the same rental outcomes from here.
  run_rental_burst(original, 100, 100.0, 12);
  run_rental_burst(restored, 100, 100.0, 12);
  EXPECT_TRUE(original.fault_stats() == restored.fault_stats());
  ByteWriter end_a;
  original.save_state(end_a);
  ByteWriter end_b;
  restored.save_state(end_b);
  EXPECT_EQ(end_a.data(), end_b.data());
}

/// Pinned counter-example against the naive alternative: restoring only the
/// policy seed (instead of the RNG *position*) would make a recovered
/// dispatcher replay rental outcomes from the beginning of the stream. The
/// suffix behavior of a restored dispatcher must differ from a freshly
/// seeded one for the pinned seed.
TEST(DispatcherRetryStateTest, RestoredRngPositionDiffersFromNaiveReseed) {
  const ServerSpec spec{1.0, 1.0};
  FaultPolicy policy;
  policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  policy.rental_failure_rate = 0.5;
  policy.max_rental_retries = 2;

  GameServerDispatcher original(spec, "first-fit", {}, policy);
  run_rental_burst(original, 1, 0.0, 24);
  ByteWriter out;
  original.save_state(out);
  const std::vector<std::uint8_t> mid = out.take();

  GameServerDispatcher restored(spec, "first-fit", {}, policy);
  ByteReader in(mid);
  restored.restore_state(in);
  GameServerDispatcher reseeded(spec, "first-fit", {}, policy);

  const std::uint64_t restored_before =
      restored.fault_stats().rental_attempts_failed;
  run_rental_burst(restored, 100, 100.0, 12);
  run_rental_burst(reseeded, 100, 100.0, 12);
  const std::uint64_t restored_suffix_failures =
      restored.fault_stats().rental_attempts_failed - restored_before;
  const std::uint64_t reseeded_failures =
      reseeded.fault_stats().rental_attempts_failed;
  // The fresh dispatcher starts its rental RNG at position 0 and draws the
  // prefix's outcome pattern, not the suffix's.
  EXPECT_NE(restored_suffix_failures, reseeded_failures);
}

// ---- durable wrappers + recovery ----------------------------------------

durability::DurabilityConfig make_config(const std::string& dir,
                                         std::uint64_t every = 16) {
  durability::DurabilityConfig config;
  config.dir = dir;
  config.checkpoint_every = every;
  config.keep_checkpoints = 2;
  return config;
}

void feed_events(durability::DurableRun& run, const Instance& instance,
                 const std::vector<Event>& events, std::size_t from,
                 std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    const Item& item = instance.item(events[i].item);
    if (events[i].kind == EventKind::kArrival) {
      (void)run.apply_arrival({item.id, item.arrival, item.size});
    } else {
      run.apply_departure(item.id, item.departure);
    }
  }
}

SimulationResult result_of(const durability::DurableRun& run,
                           const Instance& instance) {
  SimulationResult result;
  result.algorithm = run.packer().name();
  result.packing_period = instance.packing_period();
  detail::finalize_accounting(result, instance, run.packer().bins());
  return result;
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_cost_from_bins, b.total_cost_from_bins);
  EXPECT_EQ(a.max_open_bins, b.max_open_bins);
  EXPECT_EQ(a.bins_opened, b.bins_opened);
  EXPECT_EQ(a.assignment, b.assignment);
  ASSERT_EQ(a.bin_usage.size(), b.bin_usage.size());
  for (std::size_t i = 0; i < a.bin_usage.size(); ++i) {
    EXPECT_EQ(a.bin_usage[i].opened, b.bin_usage[i].opened);
    EXPECT_EQ(a.bin_usage[i].closed, b.bin_usage[i].closed);
  }
}

TEST_F(DurabilityTest, DurableRunCleanPathMatchesSimulate) {
  RandomInstanceConfig config;
  config.item_count = 100;
  const Instance instance = generate_random_instance(config, 23);
  const std::vector<Event> events = build_event_sequence(instance);
  const SimulationResult reference = simulate(instance, "first-fit", kModel);

  durability::DurableRun run(make_config(path("run")), kModel, "first-fit", {});
  feed_events(run, instance, events, 0, events.size());
  run.flush();
  expect_identical(reference, result_of(run, instance));
}

TEST_F(DurabilityTest, RecoveryResumesInterruptedRunBitIdentically) {
  RandomInstanceConfig config;
  config.item_count = 100;
  const Instance instance = generate_random_instance(config, 29);
  const std::vector<Event> events = build_event_sequence(instance);
  const SimulationResult reference = simulate(instance, "first-fit", kModel);

  // Apply a strict prefix, flush (the WAL durability point), then drop the
  // wrapper without any shutdown — the journal tail is what a SIGKILL
  // would have left.
  const std::size_t cut = events.size() / 3;
  {
    durability::DurableRun run(make_config(path("run")), kModel, "first-fit",
                               {});
    feed_events(run, instance, events, 0, cut);
    run.flush();
  }

  obs::MetricsRegistry metrics;
  obs::ObsScope scope(nullptr, &metrics);
  durability::RecoveryManager manager(make_config(path("run")));
  durability::RecoveredState state = manager.recover();
  ASSERT_EQ(state.mode, durability::DurableMode::kSimulation);
  ASSERT_NE(state.run, nullptr);
  EXPECT_EQ(state.report.next_seq, cut);
  EXPECT_EQ(state.report.replayed_events + state.report.checkpoint_seq, cut);
  EXPECT_EQ(metrics.counter_value("recovery.replayed_events"),
            std::optional<std::uint64_t>(state.report.replayed_events));

  feed_events(*state.run, instance, events, cut, events.size());
  state.run->flush();
  expect_identical(reference, result_of(*state.run, instance));
}

TEST_F(DurabilityTest, RecoveryFallsBackWhenNewestCheckpointIsCorrupt) {
  RandomInstanceConfig config;
  config.item_count = 120;
  const Instance instance = generate_random_instance(config, 31);
  const std::vector<Event> events = build_event_sequence(instance);
  const SimulationResult reference = simulate(instance, "first-fit", kModel);
  {
    durability::DurableRun run(make_config(path("run")), kModel, "first-fit",
                               {});
    feed_events(run, instance, events, 0, events.size());
    run.flush();
  }
  const auto entries = durability::list_checkpoints(path("run"));
  ASSERT_GE(entries.size(), 2u);
  flip_byte(entries.front().path,
            durability::detail::file_size(entries.front().path) - 1);

  durability::RecoveryManager manager(make_config(path("run")));
  durability::RecoveredState state = manager.recover();
  ASSERT_NE(state.run, nullptr);
  EXPECT_GE(state.report.checkpoints_skipped, 1u);
  EXPECT_LT(state.report.checkpoint_seq, entries.front().next_seq);
  feed_events(*state.run, instance, events, state.report.next_seq,
              events.size());
  state.run->flush();
  expect_identical(reference, result_of(*state.run, instance));
}

TEST_F(DurabilityTest, RecoveryRefusesDirectoryWithoutUsableCheckpoint) {
  // An existing directory with no checkpoint at all (the bootstrap-crash
  // residue) is refused as corruption; a directory that cannot even be
  // listed is an I/O error, not a recovery verdict.
  std::filesystem::create_directories(path("nothing"));
  durability::RecoveryManager empty(make_config(path("nothing")));
  EXPECT_THROW((void)empty.recover(), CorruptionError);
  durability::RecoveryManager missing(make_config(path("no-such-dir")));
  EXPECT_THROW((void)missing.recover(), IoError);

  // All checkpoints damaged -> typed refusal, never a fabricated state.
  {
    durability::DurableRun run(make_config(path("run")), kModel, "first-fit",
                               {});
    (void)run.apply_arrival({0, 0.0, 0.5});
    run.flush();
  }
  for (const auto& entry : durability::list_checkpoints(path("run"))) {
    flip_byte(entry.path, durability::detail::file_size(entry.path) / 2);
  }
  durability::RecoveryManager manager(make_config(path("run")));
  EXPECT_THROW((void)manager.recover(), CorruptionError);
}

TEST_F(DurabilityTest, DurableRunRejectsClairvoyantAlgorithms) {
  EXPECT_THROW(durability::DurableRun(make_config(path("run")), kModel,
                                      "align-departures-fit", {}),
               PreconditionError);
}

TEST_F(DurabilityTest, DurableDispatcherSurvivesRecoveryWithFaultState) {
  const ServerSpec spec{1.0, 1.0};
  FaultPolicy policy;
  policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  policy.rental_failure_rate = 0.25;
  policy.max_rental_retries = 2;

  // Reference: one uninterrupted plain dispatcher over the same ops.
  GameServerDispatcher reference(spec, "first-fit", {}, policy);
  const auto drive = [](auto& dispatcher, std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i) {
      const Time t = static_cast<Time>(i);
      (void)dispatcher.start_session(i, 0.6, t);
      if (i >= 2) dispatcher.end_session(i - 2, t + 0.25);
    }
  };
  drive(reference, 0, 40);

  const std::size_t cut = 23;
  {
    durability::DurableDispatcher durable(make_config(path("d"), 8), spec,
                                          "first-fit", {}, policy);
    drive(durable, 0, cut);
    durable.flush();
  }
  durability::RecoveryManager manager(make_config(path("d"), 8));
  durability::RecoveredState state = manager.recover();
  ASSERT_EQ(state.mode, durability::DurableMode::kDispatcher);
  ASSERT_NE(state.dispatcher, nullptr);
  drive(*state.dispatcher, cut, 40);

  EXPECT_TRUE(state.dispatcher->dispatcher().fault_stats() ==
              reference.fault_stats());
  ByteWriter got;
  state.dispatcher->dispatcher().save_state(got);
  ByteWriter want;
  reference.save_state(want);
  EXPECT_EQ(got.data(), want.data());
}

}  // namespace
}  // namespace dbp
