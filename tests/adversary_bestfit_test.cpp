// Theorem 2 / Figure 3: the Best Fit unbounded-ratio construction. The test
// replays the generated schedule against the real Best Fit packer and checks
// the bin evolution the proof describes.
#include "workload/adversary_bestfit.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

BestFitAdversaryConfig small_config() {
  BestFitAdversaryConfig config;
  config.k = 4;
  config.mu = 4.0;
  config.iterations = 3;
  config.delta = 1.0;
  config.window = 1.0 / 64.0;
  return config;
}

TEST(BestFitAdversaryTest, RealizedMuIsExact) {
  const auto built = build_bestfit_adversary(small_config());
  const InstanceMetrics metrics = compute_metrics(built.instance);
  EXPECT_NEAR(metrics.mu, 4.0, 1e-9);
  EXPECT_NEAR(metrics.min_interval_length, 1.0, 1e-12);
  EXPECT_NEAR(metrics.max_interval_length, 4.0, 1e-9);
}

TEST(BestFitAdversaryTest, AllItemsShareSizeEpsilon) {
  const auto built = build_bestfit_adversary(small_config());
  for (const Item& item : built.instance.items()) {
    EXPECT_DOUBLE_EQ(item.size, built.epsilon);
  }
  // eps = 1/(k*q).
  const std::size_t q = small_config().slices_per_chunk();
  EXPECT_DOUBLE_EQ(built.epsilon, 1.0 / static_cast<double>(4 * q));
}

TEST(BestFitAdversaryTest, BestFitOpensExactlyKBinsAndKeepsThemOpen) {
  const auto built = build_bestfit_adversary(small_config());
  const SimulationResult result =
      simulate(built.instance, "best-fit", unit_model());
  EXPECT_EQ(result.bins_opened, 4u);  // never more than the initial k bins
  EXPECT_EQ(result.max_open_bins, 4);
  // All k bins stay open from t=0 until nearly the end: check a probe point
  // in the middle of each inter-iteration gap.
  const Time T = 4.0 - built.config.window / 4.0;
  for (std::size_t j = 1; j < built.iterations; ++j) {
    const Time probe = (static_cast<double>(j) + 0.5) * T;
    EXPECT_EQ(result.open_bins_over_time.value_at(probe), 4) << "j = " << j;
  }
}

TEST(BestFitAdversaryTest, MeasuredCostMatchesPrediction) {
  const auto built = build_bestfit_adversary(small_config());
  const SimulationResult result =
      simulate(built.instance, "best-fit", unit_model());
  EXPECT_NEAR(result.total_cost, built.predicted_bestfit_cost,
              1e-9 * built.predicted_bestfit_cost);
}

TEST(BestFitAdversaryTest, OptIsExactAndBelowPaperUpperBound) {
  const auto built = build_bestfit_adversary(small_config());
  const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
  EXPECT_TRUE(opt.exact);  // equal sizes
  EXPECT_LE(opt.upper_cost, built.predicted_opt_upper + 1e-6);
}

TEST(BestFitAdversaryTest, RatioExceedsHalfK) {
  // With auto-chosen n, the paper guarantees BF/OPT >= k/2.
  for (const std::size_t k : {3u, 5u, 8u}) {
    BestFitAdversaryConfig config;
    config.k = k;
    config.mu = 4.0;
    const auto built = build_bestfit_adversary(config);
    const SimulationResult bf = simulate(built.instance, "best-fit", unit_model());
    const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
    const double ratio = bf.total_cost / opt.upper_cost;
    EXPECT_GE(ratio, static_cast<double>(k) / 2.0) << "k = " << k;
  }
}

TEST(BestFitAdversaryTest, RatioGrowsUnboundedInK) {
  // The same mu, increasing k: the measured ratio must strictly grow —
  // Best Fit has no bounded competitive ratio for fixed mu (Theorem 2).
  double previous = 0.0;
  for (const std::size_t k : {3u, 6u, 9u}) {
    BestFitAdversaryConfig config;
    config.k = k;
    config.mu = 3.0;
    const auto built = build_bestfit_adversary(config);
    const SimulationResult bf = simulate(built.instance, "best-fit", unit_model());
    const OptTotalResult opt = estimate_opt_total(built.instance, unit_model());
    const double ratio = bf.total_cost / opt.upper_cost;
    EXPECT_GT(ratio, previous);
    previous = ratio;
  }
}

TEST(BestFitAdversaryTest, FirstFitEscapesTheTrap) {
  // The construction is tailored to Best Fit's fullest-bin preference;
  // First Fit sends every group to bin b_1 and closes the rest, ending up
  // strictly cheaper than Best Fit on the same instance.
  const auto built = build_bestfit_adversary(small_config());
  const SimulationResult bf = simulate(built.instance, "best-fit", unit_model());
  const SimulationResult ff = simulate(built.instance, "first-fit", unit_model());
  EXPECT_LT(ff.total_cost, bf.total_cost);
}

TEST(BestFitAdversaryTest, AutoIterationsMatchPaperFormula) {
  BestFitAdversaryConfig config;
  config.k = 6;
  config.mu = 4.0;
  config.window = 1.0 / 64.0;
  const double need = (6.0 - 1.0) * 1.0 / (4.0 - 1.0 / 64.0);
  EXPECT_EQ(config.effective_iterations(),
            static_cast<std::size_t>(std::ceil(need)) + 1);
}

TEST(BestFitAdversaryTest, ValidatesConfig) {
  BestFitAdversaryConfig config = small_config();
  config.k = 1;
  EXPECT_THROW((void)build_bestfit_adversary(config), PreconditionError);
  config = small_config();
  config.mu = 1.0;  // construction needs mu > 1
  EXPECT_THROW((void)build_bestfit_adversary(config), PreconditionError);
  config = small_config();
  config.window = 2.0;  // too wide for mu=4, Delta=1
  EXPECT_THROW((void)build_bestfit_adversary(config), PreconditionError);
}

// The generator's trickiest promise — Best Fit opens exactly k bins and
// keeps them open — must hold across the whole (k, mu) parameter plane.
using BfCell = std::tuple<std::size_t, double>;
class BestFitAdversarySweep : public ::testing::TestWithParam<BfCell> {};

TEST_P(BestFitAdversarySweep, ExactlyKBinsForcedEverywhere) {
  BestFitAdversaryConfig config;
  config.k = std::get<0>(GetParam());
  config.mu = std::get<1>(GetParam());
  const auto built = build_bestfit_adversary(config);
  const SimulationResult bf =
      simulate(built.instance, "best-fit", unit_model());
  EXPECT_EQ(bf.bins_opened, config.k);
  EXPECT_EQ(bf.max_open_bins, static_cast<std::int64_t>(config.k));
  EXPECT_NEAR(bf.total_cost, built.predicted_bestfit_cost,
              1e-9 * built.predicted_bestfit_cost);
  const InstanceMetrics metrics = compute_metrics(built.instance);
  EXPECT_NEAR(metrics.mu, config.mu, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Plane, BestFitAdversarySweep,
    ::testing::Combine(::testing::Values(2u, 3u, 5u, 7u, 10u),
                       ::testing::Values(1.5, 2.0, 4.0, 8.0)),
    [](const ::testing::TestParamInfo<BfCell>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_mu" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10.0));
    });

TEST(BestFitAdversaryTest, GroupSizesFollowTheProof) {
  // Group (j, m) has q - (j*k + m) items; spot-check the generated counts
  // by reconstructing them from simultaneous arrival times.
  const auto built = build_bestfit_adversary(small_config());
  const std::size_t k = 4;
  const std::size_t q = built.config.slices_per_chunk();
  // Count items arriving at the j=1, m=1 group time.
  const Time h = built.config.window / static_cast<double>(k);
  const Time T = built.config.mu * built.config.delta - h;
  const Time a11 = T - built.config.window;
  std::size_t count = 0;
  for (const Item& item : built.instance.items()) {
    if (item.arrival == a11) ++count;
  }
  EXPECT_EQ(count, q - (1 * k + 1));
}

}  // namespace
}  // namespace dbp
