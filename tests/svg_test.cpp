#include "analysis/svg.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(SvgGanttTest, WellFormedDocument) {
  Instance instance;
  instance.add(0.0, 4.0, 0.5);
  instance.add(1.0, 3.0, 0.4);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const std::string svg = render_bin_gantt_svg(instance, result);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_occurrences(svg, "<svg"), 1u);
  // One band rect + one background rect + one item rect per item.
  EXPECT_EQ(count_occurrences(svg, "<title>item"), instance.size());
}

TEST(SvgGanttTest, OneBandPerBin) {
  const auto built = build_anyfit_adversary({.k = 4, .mu = 2.0});
  const SimulationResult result =
      simulate(built.instance, "first-fit", unit_model());
  const std::string svg = render_bin_gantt_svg(built.instance, result);
  for (int b = 0; b < 4; ++b) {
    EXPECT_NE(svg.find(">bin " + std::to_string(b) + "<"), std::string::npos);
  }
  EXPECT_EQ(svg.find(">bin 4<"), std::string::npos);
}

TEST(SvgGanttTest, TitleIsEscaped) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  SvgOptions options;
  options.title = "a<b & \"c\"";
  const std::string svg = render_bin_gantt_svg(instance, result, options);
  EXPECT_NE(svg.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

TEST(SvgGanttTest, LargeInstanceSkipsLabels) {
  RandomInstanceConfig config;
  config.item_count = 300;
  const Instance instance = generate_random_instance(config, 1);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const std::string svg = render_bin_gantt_svg(instance, result);
  // Tooltips always present; per-item text labels suppressed above 200.
  EXPECT_EQ(count_occurrences(svg, "<title>item"), instance.size());
}

TEST(SvgGanttTest, Validation) {
  Instance instance;
  instance.add(0.0, 1.0, 0.5);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  SvgOptions bad;
  bad.width = 10;
  EXPECT_THROW((void)render_bin_gantt_svg(instance, result, bad), PreconditionError);
  EXPECT_THROW((void)render_bin_gantt_svg(Instance{}, result), PreconditionError);
}

TEST(SvgTimelineTest, RendersEachSeries) {
  Instance instance;
  instance.add(0.0, 4.0, 0.9);
  instance.add(1.0, 3.0, 0.9);
  const SimulationResult ff = simulate(instance, "first-fit", unit_model());
  const SimulationResult nf = simulate(instance, "next-fit", unit_model());
  const std::string svg = render_open_bins_svg(
      {{"first-fit", &ff.open_bins_over_time},
       {"next-fit", &nf.open_bins_over_time}});
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 2u);
  EXPECT_NE(svg.find(">first-fit<"), std::string::npos);
  EXPECT_NE(svg.find(">next-fit<"), std::string::npos);
}

TEST(SvgTimelineTest, RequiresFinalizedNonEmptySeries) {
  EXPECT_THROW((void)render_open_bins_svg({}), PreconditionError);
  StepFunction unfinalized;
  unfinalized.add_delta(0.0, 1);
  EXPECT_THROW((void)render_open_bins_svg({{"x", &unfinalized}}), PreconditionError);
  StepFunction empty;
  empty.finalize();
  EXPECT_THROW((void)render_open_bins_svg({{"x", &empty}}), PreconditionError);
}

}  // namespace
}  // namespace dbp
