#include "algo/segment_tree.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

namespace dbp {
namespace {

TEST(MaxSegmentTreeTest, EmptyTree) {
  MaxSegmentTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.max_value(), MaxSegmentTree::kNegInf);
  EXPECT_FALSE(tree.find_leftmost([](double v) { return v > 0; }).has_value());
  EXPECT_FALSE(tree.find_rightmost([](double v) { return v > 0; }).has_value());
}

TEST(MaxSegmentTreeTest, PushBackAndQuery) {
  MaxSegmentTree tree;
  EXPECT_EQ(tree.push_back(1.0), 0u);
  EXPECT_EQ(tree.push_back(3.0), 1u);
  EXPECT_EQ(tree.push_back(2.0), 2u);
  EXPECT_DOUBLE_EQ(tree.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(tree.value_at(2), 2.0);
}

TEST(MaxSegmentTreeTest, FindLeftmost) {
  MaxSegmentTree tree;
  tree.push_back(1.0);
  tree.push_back(3.0);
  tree.push_back(2.0);
  tree.push_back(3.0);
  const auto pos = tree.find_leftmost([](double v) { return v >= 3.0; });
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
  const auto pos2 = tree.find_leftmost([](double v) { return v >= 1.5; });
  ASSERT_TRUE(pos2.has_value());
  EXPECT_EQ(*pos2, 1u);
  EXPECT_FALSE(tree.find_leftmost([](double v) { return v > 3.0; }).has_value());
}

TEST(MaxSegmentTreeTest, FindRightmost) {
  MaxSegmentTree tree;
  tree.push_back(3.0);
  tree.push_back(1.0);
  tree.push_back(3.0);
  tree.push_back(2.0);
  const auto pos = tree.find_rightmost([](double v) { return v >= 3.0; });
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 2u);
}

TEST(MaxSegmentTreeTest, AssignUpdatesAggregates) {
  MaxSegmentTree tree;
  tree.push_back(5.0);
  tree.push_back(1.0);
  tree.assign(0, 0.5);
  EXPECT_DOUBLE_EQ(tree.max_value(), 1.0);
  const auto pos = tree.find_leftmost([](double v) { return v >= 1.0; });
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(MaxSegmentTreeTest, DeactivateRemovesFromSearch) {
  MaxSegmentTree tree;
  tree.push_back(2.0);
  tree.push_back(2.0);
  tree.deactivate(0);
  const auto pos = tree.find_leftmost([](double v) { return v >= 2.0; });
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 1u);
}

TEST(MaxSegmentTreeTest, OutOfRangeThrows) {
  MaxSegmentTree tree;
  tree.push_back(1.0);
  EXPECT_THROW(tree.assign(1, 0.0), PreconditionError);
  EXPECT_THROW((void)tree.value_at(1), PreconditionError);
}

TEST(MaxSegmentTreeTest, GrowthPreservesContents) {
  MaxSegmentTree tree;
  for (int i = 0; i < 100; ++i) tree.push_back(static_cast<double>(i));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(tree.value_at(static_cast<std::size_t>(i)), i);
  }
  EXPECT_DOUBLE_EQ(tree.max_value(), 99.0);
}

TEST(MaxSegmentTreeTest, RandomizedAgainstBruteForce) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> value_dist(0.0, 1.0);
  MaxSegmentTree tree;
  std::vector<double> shadow;
  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng() % 4);
    if (op == 0 || shadow.empty()) {
      tree.push_back(value_dist(rng));
      shadow.push_back(tree.value_at(tree.size() - 1));
    } else if (op == 1) {
      const std::size_t pos = rng() % shadow.size();
      const double v = value_dist(rng);
      tree.assign(pos, v);
      shadow[pos] = v;
    } else {
      const double threshold = value_dist(rng);
      const auto pred = [threshold](double v) { return v >= threshold; };
      std::optional<std::size_t> expect_left;
      std::optional<std::size_t> expect_right;
      for (std::size_t i = 0; i < shadow.size(); ++i) {
        if (pred(shadow[i])) {
          if (!expect_left) expect_left = i;
          expect_right = i;
        }
      }
      EXPECT_EQ(tree.find_leftmost(pred), expect_left);
      EXPECT_EQ(tree.find_rightmost(pred), expect_right);
    }
  }
}

}  // namespace
}  // namespace dbp
