#include "algo/any_fit_packer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "algo/strategies.hpp"
#include "core/error.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

std::unique_ptr<AnyFitPacker> make_ff() {
  auto packer = std::make_unique<AnyFitPacker>(
      unit_model(), std::make_unique<FirstFitStrategy>(unit_model()));
  packer->set_paranoid(true);
  return packer;
}

std::unique_ptr<AnyFitPacker> make_bf() {
  auto packer = std::make_unique<AnyFitPacker>(
      unit_model(), std::make_unique<BestFitStrategy>(unit_model()));
  packer->set_paranoid(true);
  return packer;
}

TEST(AnyFitPackerTest, RequiresStrategy) {
  EXPECT_THROW(AnyFitPacker(unit_model(), nullptr), PreconditionError);
}

TEST(AnyFitPackerTest, NameComesFromStrategy) {
  EXPECT_EQ(make_ff()->name(), "first-fit");
  EXPECT_EQ(make_bf()->name(), "best-fit");
}

TEST(AnyFitPackerTest, OpensBinOnlyWhenNeeded) {
  auto packer = make_ff();
  EXPECT_EQ(packer->on_arrival({0, 0.0, 0.6}), 0u);
  EXPECT_EQ(packer->on_arrival({1, 0.0, 0.6}), 1u);  // does not fit bin 0
  EXPECT_EQ(packer->on_arrival({2, 0.0, 0.4}), 0u);  // fits bin 0
  EXPECT_EQ(packer->bins().total_bins_opened(), 2u);
}

TEST(AnyFitPackerTest, RejectsOversizeItem) {
  auto packer = make_ff();
  EXPECT_THROW(packer->on_arrival({0, 0.0, 1.5}), PreconditionError);
}

TEST(AnyFitPackerTest, DepartureClosesBin) {
  auto packer = make_ff();
  packer->on_arrival({0, 0.0, 0.5});
  packer->on_arrival({1, 0.0, 0.5});
  packer->on_departure(0, 1.0);
  EXPECT_EQ(packer->bins().open_count(), 1u);
  packer->on_departure(1, 2.0);
  EXPECT_EQ(packer->bins().open_count(), 0u);
  EXPECT_DOUBLE_EQ(packer->bins().usage(0).closed, 2.0);
}

TEST(AnyFitPackerTest, ClosedBinIsNeverReused) {
  auto packer = make_ff();
  packer->on_arrival({0, 0.0, 0.5});
  packer->on_departure(0, 1.0);
  // Bin 0 closed; the next arrival must open bin 1.
  EXPECT_EQ(packer->on_arrival({1, 1.0, 0.1}), 1u);
}

TEST(AnyFitPackerTest, FirstFitScenarioFromPaperDefinition) {
  // FF puts each item into the earliest opened bin that accommodates it.
  auto packer = make_ff();
  packer->on_arrival({0, 0.0, 0.5});   // bin 0
  packer->on_arrival({1, 0.0, 0.7});   // bin 1
  packer->on_arrival({2, 0.0, 0.5});   // bin 0 (exactly fills)
  packer->on_arrival({3, 0.0, 0.2});   // bin 1 (level 0.9)
  packer->on_departure(0, 1.0);
  packer->on_departure(2, 1.0);        // bin 0 closes
  EXPECT_EQ(packer->on_arrival({4, 1.0, 0.1}), 1u);  // earliest open = bin 1
}

TEST(AnyFitPackerTest, BestFitPrefersFullestBin) {
  auto packer = make_bf();
  packer->on_arrival({0, 0.0, 0.5});  // bin 0, level .5
  packer->on_arrival({1, 0.0, 0.7});  // bin 1, level .7
  // 0.2 fits both; BF picks bin 1 (residual .3 < .5).
  EXPECT_EQ(packer->on_arrival({2, 0.0, 0.2}), 1u);
  // 0.4 fits only bin 0.
  EXPECT_EQ(packer->on_arrival({3, 0.0, 0.4}), 0u);
}

TEST(AnyFitPackerTest, FirstFitVersusBestFitDivergence) {
  // Same arrivals, different placement: the canonical FF/BF distinction.
  auto ff = make_ff();
  auto bf = make_bf();
  for (auto* packer : {ff.get(), bf.get()}) {
    packer->on_arrival({0, 0.0, 0.4});  // bin 0
    packer->on_arrival({1, 0.0, 0.6});  // bin 1 for both (0.6 fits bin 0 -> no!
                                        // 0.4+0.6=1.0 exactly fits bin 0)
  }
  // 0.6 fits bin 0 exactly for both policies (FF earliest, BF smallest
  // residual 0.6 vs nothing else) -> both still one bin.
  EXPECT_EQ(ff->bins().total_bins_opened(), 1u);
  EXPECT_EQ(bf->bins().total_bins_opened(), 1u);

  auto ff2 = make_ff();
  auto bf2 = make_bf();
  for (auto* packer : {ff2.get(), bf2.get()}) {
    packer->on_arrival({0, 0.0, 0.3});  // bin 0
    packer->on_arrival({1, 0.0, 0.8});  // bin 1
    packer->on_arrival({2, 0.0, 0.15});
  }
  // FF: 0.15 goes to bin 0 (earliest, residual .7). BF: bin 1 (residual .2).
  EXPECT_EQ(ff2->bins().assignment_of(2), std::optional<BinId>(0));
  EXPECT_EQ(bf2->bins().assignment_of(2), std::optional<BinId>(1));
}

TEST(AnyFitPackerTest, ManyItemsSingleBinExactFill) {
  // 1000 items of 1e-3 fill one bin despite fp rounding (tolerance).
  auto packer = make_ff();
  for (ItemId i = 0; i < 1000; ++i) packer->on_arrival({i, 0.0, 1e-3});
  EXPECT_EQ(packer->bins().total_bins_opened(), 1u);
  packer->on_arrival({1000, 0.0, 1e-3});
  EXPECT_EQ(packer->bins().total_bins_opened(), 2u);
}

TEST(AnyFitPackerTest, UnknownDepartureThrows) {
  auto packer = make_ff();
  EXPECT_THROW(packer->on_departure(3, 0.0), PreconditionError);
}

}  // namespace
}  // namespace dbp
