// Differential testing: the optimized packers (segment trees, ordered
// residual indexes) against straightforward O(n*m) reference
// implementations, item by item, on randomized workloads.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>

#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

/// Textbook reference: bins as a plain map from id to (level, items),
/// linear scans for every decision.
class ReferencePacker {
 public:
  enum class Policy { kFirstFit, kBestFit, kWorstFit, kLastFit };

  ReferencePacker(CostModel model, Policy policy)
      : model_(model), policy_(policy) {}

  BinId on_arrival(ItemId id, double size) {
    std::optional<BinId> chosen;
    for (const auto& [bin, state] : bins_) {
      if (!model_.fits(size, model_.bin_capacity - state.level)) continue;
      if (!chosen) {
        chosen = bin;
        continue;
      }
      const double current = bins_.at(*chosen).level;
      switch (policy_) {
        case Policy::kFirstFit:
          break;  // first qualifying id (map is id-ordered)
        case Policy::kBestFit:
          if (state.level > current) chosen = bin;
          break;
        case Policy::kWorstFit:
          if (state.level < current) chosen = bin;
          break;
        case Policy::kLastFit:
          chosen = bin;  // keep the largest qualifying id
          break;
      }
    }
    const BinId bin = chosen.value_or(next_id_);
    if (!chosen) {
      bins_[bin];  // open
      ++next_id_;
    }
    bins_[bin].level += size;
    bins_[bin].items[id] = size;
    return bin;
  }

  void on_departure(ItemId id) {
    for (auto it = bins_.begin(); it != bins_.end(); ++it) {
      auto item = it->second.items.find(id);
      if (item == it->second.items.end()) continue;
      it->second.level -= item->second;
      it->second.items.erase(item);
      if (it->second.items.empty()) bins_.erase(it);
      return;
    }
    FAIL() << "departure of unknown item " << id;
  }

 private:
  struct BinState {
    double level = 0.0;
    std::map<ItemId, double> items;
  };
  CostModel model_;
  Policy policy_;
  std::map<BinId, BinState> bins_;  // only open bins
  BinId next_id_ = 0;
};

using Cell = std::tuple<std::string, std::uint64_t>;

class DifferentialTest : public ::testing::TestWithParam<Cell> {};

TEST_P(DifferentialTest, OptimizedMatchesReferenceDecisionForDecision) {
  const auto [name, seed] = GetParam();
  ReferencePacker::Policy policy{};
  if (name == "first-fit") policy = ReferencePacker::Policy::kFirstFit;
  if (name == "best-fit") policy = ReferencePacker::Policy::kBestFit;
  if (name == "worst-fit") policy = ReferencePacker::Policy::kWorstFit;
  if (name == "last-fit") policy = ReferencePacker::Policy::kLastFit;

  RandomInstanceConfig config;
  config.item_count = 1500;
  config.arrival.rate = 12.0 + static_cast<double>(seed % 3) * 8.0;
  config.duration.max_length = 1.0 + static_cast<double>(seed % 7);
  config.size.min_fraction = 0.01;
  config.size.max_fraction = 0.97;
  const Instance instance = generate_random_instance(config, seed);

  auto optimized = make_packer(name, unit_model());
  ReferencePacker reference(unit_model(), policy);

  // Drive both through the same event sequence, comparing every placement.
  // Bin ids are comparable because both assign them densely in opening
  // order.
  for (const Event& event : build_event_sequence(instance)) {
    const Item& item = instance.item(event.item);
    if (event.kind == EventKind::kArrival) {
      const BinId fast = optimized->on_arrival(
          ArrivingItem{item.id, item.arrival, item.size});
      const BinId slow = reference.on_arrival(item.id, item.size);
      ASSERT_EQ(fast, slow) << name << " diverged at item " << item.id;
    } else {
      optimized->on_departure(item.id, item.departure);
      reference.on_departure(item.id);
    }
  }
  EXPECT_EQ(optimized->bins().open_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialTest,
    ::testing::Combine(::testing::Values("first-fit", "best-fit", "worst-fit",
                                         "last-fit"),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = std::get<0>(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dbp
