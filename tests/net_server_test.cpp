// WireServer lifecycle and fault-containment tests (ISSUE 10): real
// AF_UNIX sockets in a per-test temp directory, both framings, the
// malformed-frame containment contract (a fatal frame closes only its own
// connection), graceful-shutdown draining, and the epoch timer thread.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "engine/engine.hpp"
#include "net/wire_client.hpp"
#include "net/wire_protocol.hpp"
#include "net/wire_server.hpp"
#include "obs/metrics_registry.hpp"

namespace dbp::net {
namespace {

class WireServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("dbp_net_server_test.") + info->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string socket_path() const { return dir_ + "/wire.sock"; }

  [[nodiscard]] static engine::EngineConfig engine_config() {
    engine::EngineConfig config;
    config.shard_count = 2;
    config.spec = ServerSpec{1.0, 6.0};
    return config;
  }

  [[nodiscard]] WireServerConfig server_config(
      std::uint64_t epoch_cadence_ms = 0) const {
    WireServerConfig config;
    config.socket_path = socket_path();
    config.epoch_cadence_ms = epoch_cadence_ms;
    return config;
  }

  /// Bounded wait for an asynchronous server-side condition; fails the
  /// test instead of hanging when the condition never comes true.
  template <typename Predicate>
  static void wait_for(Predicate&& predicate) {
    for (int round = 0; round < 2000; ++round) {
      if (predicate()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "condition not reached within the bounded wait";
  }

  std::string dir_;
};

TEST_F(WireServerTest, ConfigValidationRejectsUnusableSetups) {
  WireServerConfig config;  // empty socket path
  EXPECT_THROW(config.validate(), PreconditionError);
}

TEST_F(WireServerTest, StaleSocketFileIsReplacedOnStart) {
  {
    std::ofstream stale(socket_path());
    stale << "stale";
  }
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();
  WireClient client(socket_path(), WireClient::Framing::kBinary);
  EXPECT_EQ(client.query(0.0).error, WireError::kNone);
  server.stop();
}

TEST_F(WireServerTest, QueryReflectsSubmittedEventsBothFramings) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();

  for (const auto framing :
       {WireClient::Framing::kBinary, WireClient::Framing::kJson}) {
    WireClient client(socket_path(), framing);
    const std::uint64_t base = framing == WireClient::Framing::kJson ? 100 : 0;
    client.submit(engine::start_event(base + 1, 0.25, 1.0));
    client.submit(engine::start_event(base + 2, 0.5, 2.0));
    client.submit(engine::end_event(base + 1, 5.0));
    client.epoch(6.0 + static_cast<double>(base));
    const WireResponse answer = client.query(6.0 + static_cast<double>(base));
    ASSERT_EQ(answer.error, WireError::kNone) << answer.detail;
    EXPECT_NE(answer.body.find("\"active_sessions\""), std::string::npos);
    EXPECT_NE(answer.body.find("\"opt_bounds\""), std::string::npos);
    EXPECT_NE(answer.body.find("\"fault_stats\""), std::string::npos);
    EXPECT_TRUE(client.async_errors().empty());
  }

  server.stop();
  // 2 connections x (3 submits + 1 epoch + 1 query).
  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.frames_received, 10u);
  EXPECT_EQ(stats.frames_rejected, 0u);
  EXPECT_EQ(stats.events_submitted, 6u);
  EXPECT_EQ(stats.epochs_advanced, 2u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_EQ(eng.events_applied(), 6u);
  EXPECT_EQ(eng.active_sessions(), 2u);  // one session left open per framing
}

TEST_F(WireServerTest, FatalFrameClosesOnlyTheOffendingConnection) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();

  WireClient victim(socket_path(), WireClient::Framing::kBinary);
  victim.submit(engine::start_event(1, 0.25, 1.0));
  victim.flush();

  WireClient vandal(socket_path(), WireClient::Framing::kBinary);
  const std::string garbage = "GARBAGE-NOT-A-FRAME";
  vandal.send_raw(std::span(
      reinterpret_cast<const std::uint8_t*>(garbage.data()), garbage.size()));
  const WireResponse rejection = vandal.read_response();
  EXPECT_EQ(rejection.error, WireError::kBadMagic);
  // Fatal: the server closes the stream after the typed response.
  vandal.finish_writes();
  EXPECT_THROW((void)vandal.read_response(), IoError);

  // The victim's connection and the engine are unaffected.
  const WireResponse answer = victim.query(2.0);
  ASSERT_EQ(answer.error, WireError::kNone) << answer.detail;
  EXPECT_TRUE(victim.async_errors().empty());
  server.stop();
  EXPECT_EQ(eng.events_applied(), 1u);
  EXPECT_EQ(server.stats().frames_rejected, 1u);
}

TEST_F(WireServerTest, RecoverableRejectionKeepsTheStreamUsable) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();

  WireClient client(socket_path(), WireClient::Framing::kBinary);
  ByteWriter frame;
  const std::vector<std::uint8_t> unknown_verb = {0x63};
  append_frame(frame, std::span(unknown_verb));
  client.send_raw(std::span(frame.data()));
  const WireResponse rejection = client.read_response();
  EXPECT_EQ(rejection.error, WireError::kUnknownVerb);

  // Same connection, next frame: served normally.
  const WireResponse answer = client.query(0.0);
  EXPECT_EQ(answer.error, WireError::kNone) << answer.detail;
  server.stop();
  EXPECT_EQ(server.stats().frames_rejected, 1u);
}

TEST_F(WireServerTest, RegressingAndNonFiniteEpochsAreRejectedTyped) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();

  WireClient client(socket_path(), WireClient::Framing::kBinary);
  client.epoch(10.0);
  client.epoch(5.0);  // regresses: typed rejection, connection survives
  WireRequest nan_epoch;
  nan_epoch.verb = WireVerb::kEpoch;
  nan_epoch.time_minutes = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::uint8_t> nan_frame = encode_request_frame(nan_epoch);
  client.send_raw(std::span(nan_frame));

  const WireResponse answer = client.query(10.0);
  ASSERT_EQ(answer.error, WireError::kNone) << answer.detail;
  ASSERT_EQ(client.async_errors().size(), 2u);
  for (const WireResponse& rejection : client.async_errors()) {
    EXPECT_EQ(rejection.error, WireError::kBadField);
  }
  server.stop();
  // Only the first epoch reached the engine.
  EXPECT_EQ(server.stats().epochs_advanced, 1u);
}

TEST_F(WireServerTest, ShutdownVerbStopsTheServerAndDrainsRings) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();

  WireClient client(socket_path(), WireClient::Framing::kJson);
  constexpr std::uint64_t kEvents = 64;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    client.submit(
        engine::start_event(i + 1, 0.125, static_cast<double>(i) * 0.25));
  }
  const WireResponse ack = client.shutdown_server();
  ASSERT_EQ(ack.error, WireError::kNone) << ack.detail;
  EXPECT_NE(ack.body.find("\"stopping\""), std::string::npos);

  EXPECT_TRUE(server.wait_until_stopped());
  server.stop();
  EXPECT_FALSE(server.running());
  // stop() drains the rings: every accepted submit is applied.
  EXPECT_EQ(eng.events_applied(), kEvents);
  EXPECT_EQ(eng.active_sessions(), kEvents);
}

TEST_F(WireServerTest, TimerCutsEpochsAtTheEventTimeWatermark) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config(/*epoch_cadence_ms=*/5));
  server.start();

  WireClient client(socket_path(), WireClient::Framing::kBinary);
  client.submit(engine::start_event(1, 0.5, 1.0));
  client.flush();

  // Wall time decides only *when* the timer fires; the epoch's logical
  // time is the event-time high-water mark, never a clock reading. Only
  // the timer drains here, and a tick snapshots right after its drain, so
  // events_applied >= 1 implies an epoch at watermark 1.0 whose snapshot
  // holds the open session.
  wait_for([&] { return eng.events_applied() >= 1; });
  EXPECT_EQ(server.watermark_minutes(), 1.0);

  // Raising the watermark makes the next tick integrate [1, 31) from that
  // snapshot; further ticks at a flat watermark add zero-length segments,
  // which are free (EngineTest.ZeroLengthEpochSegmentsAreFree).
  client.submit(engine::end_event(1, 31.0));
  client.flush();
  wait_for([&] { return eng.opt_bounds().upper_dollars > 0.0; });

  server.stop();
  EXPECT_GE(server.stats().timer_ticks, 2u);
  EXPECT_EQ(server.watermark_minutes(), 31.0);
  const engine::StreamingOptBounds bounds = eng.opt_bounds();
  // One 0.5 session for the 30-minute segment [1, 31): one server,
  // 30 min at $6/hour.
  EXPECT_GT(bounds.segments, 0u);
  EXPECT_EQ(bounds.lower_dollars, 30.0 / 60.0 * 6.0);
  EXPECT_EQ(bounds.upper_dollars, 30.0 / 60.0 * 6.0);
  EXPECT_EQ(eng.active_sessions(), 0u);
}

TEST_F(WireServerTest, ObsCountersMirrorServingStats) {
  engine::ShardedDispatchEngine eng(engine_config());
  obs::MetricsRegistry metrics;
  WireServer server(eng, server_config(), /*tracer=*/nullptr, &metrics);
  server.start();

  WireClient client(socket_path(), WireClient::Framing::kBinary);
  client.submit(engine::start_event(1, 0.25, 1.0));
  ASSERT_EQ(client.query(1.0).error, WireError::kNone);
  server.stop();

  const WireServerStats stats = server.stats();
  EXPECT_EQ(metrics.counter("net.connections").value(),
            stats.connections_accepted);
  EXPECT_EQ(metrics.counter("net.frames_received").value(),
            stats.frames_received);
  EXPECT_EQ(metrics.counter("net.frames_rejected").value(), 0u);
  EXPECT_EQ(metrics.counter("net.bytes_in").value(), stats.bytes_in);
  EXPECT_EQ(metrics.counter("net.events_submitted").value(),
            stats.events_submitted);
}

TEST_F(WireServerTest, StopIsIdempotentAndUnlinksTheSocket) {
  engine::ShardedDispatchEngine eng(engine_config());
  WireServer server(eng, server_config());
  server.start();
  EXPECT_TRUE(std::filesystem::exists(socket_path()));
  server.stop();
  server.stop();
  EXPECT_FALSE(std::filesystem::exists(socket_path()));
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace dbp::net
