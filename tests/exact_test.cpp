#include "opt/exact.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "opt/classical.hpp"
#include "opt/lower_bounds.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

/// Brute-force optimum by trying all assignments (tiny n only).
std::size_t brute_force_bins(const std::vector<double>& sizes,
                             const CostModel& model) {
  const std::size_t n = sizes.size();
  std::size_t best = n;
  std::vector<double> levels;
  const auto recurse = [&](auto&& self, std::size_t index) -> void {
    if (levels.size() >= best) return;
    if (index == n) {
      best = std::min(best, levels.size());
      return;
    }
    for (std::size_t b = 0; b < levels.size(); ++b) {
      if (model.fits(sizes[index], model.bin_capacity - levels[b])) {
        levels[b] += sizes[index];
        self(self, index + 1);
        levels[b] -= sizes[index];
      }
    }
    levels.push_back(sizes[index]);
    self(self, index + 1);
    levels.pop_back();
  };
  if (n > 0) recurse(recurse, 0);
  return n == 0 ? 0 : best;
}

TEST(ExactTest, TrivialCases) {
  EXPECT_EQ(exact_bin_count({}, unit_model()).upper, 0u);
  const std::vector<double> one{0.4};
  const ExactPackingResult result = exact_bin_count(one, unit_model());
  EXPECT_TRUE(result.proven);
  EXPECT_EQ(result.upper, 1u);
}

TEST(ExactTest, BeatsFfdOnKnownHardInstance) {
  // FFD uses 3 bins; optimum is 2: {0.4, 0.35, 0.25} {0.45, 0.3, 0.25}.
  const std::vector<double> sizes{0.45, 0.4, 0.35, 0.3, 0.25, 0.25};
  const std::size_t ffd = first_fit_decreasing(sizes, unit_model());
  const ExactPackingResult result = exact_bin_count(sizes, unit_model());
  EXPECT_TRUE(result.proven);
  EXPECT_EQ(result.upper, 2u);
  EXPECT_LE(result.upper, ffd);
}

TEST(ExactTest, MatchesBruteForceOnRandomInstances) {
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> size_dist(0.05, 0.95);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> sizes;
    const std::size_t n = 3 + rng() % 8;  // up to 10 items
    for (std::size_t i = 0; i < n; ++i) sizes.push_back(size_dist(rng));
    const ExactPackingResult result = exact_bin_count(sizes, unit_model());
    ASSERT_TRUE(result.proven);
    EXPECT_EQ(result.upper, brute_force_bins(sizes, unit_model()))
        << "trial " << trial;
    EXPECT_EQ(result.lower, result.upper);
  }
}

TEST(ExactTest, BudgetAbortKeepsSoundBounds) {
  // A large awkward instance with a tiny node budget: the search aborts but
  // the bounds must still sandwich the FFD solution.
  std::vector<double> sizes;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> size_dist(0.2, 0.5);
  for (int i = 0; i < 40; ++i) sizes.push_back(size_dist(rng));
  ExactPackingOptions options;
  options.node_budget = 10;
  const ExactPackingResult result = exact_bin_count(sizes, unit_model(), options);
  EXPECT_LE(result.lower, result.upper);
  EXPECT_GE(result.lower, l2_lower_bound(sizes, unit_model()));
  EXPECT_LE(result.upper, first_fit_decreasing(sizes, unit_model()));
  // A 10-node budget cannot prove optimality unless bounds met initially.
  if (!result.proven) {
    EXPECT_GT(result.nodes, 10u);
  }
}

TEST(ExactTest, PerfectFitDominanceStillOptimal) {
  // Exact-fill chains exercise the dominance rule.
  const std::vector<double> sizes{0.5, 0.5, 0.5, 0.5, 0.25, 0.25, 0.25, 0.25};
  const ExactPackingResult result = exact_bin_count(sizes, unit_model());
  EXPECT_TRUE(result.proven);
  EXPECT_EQ(result.upper, 3u);
}

TEST(ExactTest, AllItemsHuge) {
  const std::vector<double> sizes(7, 0.8);
  const ExactPackingResult result = exact_bin_count(sizes, unit_model());
  EXPECT_TRUE(result.proven);
  EXPECT_EQ(result.upper, 7u);
}

}  // namespace
}  // namespace dbp
