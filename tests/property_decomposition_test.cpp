// Property tests of the Section 4.3 proof machinery: Features (f.1)-(f.5),
// Lemmas 1-5 and inequalities (8)/(10)/(14) hold on every First Fit trace
// we can generate.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/ff_decomposition.hpp"
#include "core/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/cloud_gaming.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

enum class Shape { kSteady, kBursty, kChurny, kSmallItems };

std::string shape_name(Shape shape) {
  switch (shape) {
    case Shape::kSteady: return "steady";
    case Shape::kBursty: return "bursty";
    case Shape::kChurny: return "churny";
    case Shape::kSmallItems: return "small";
  }
  return "?";
}

RandomInstanceConfig make_config(Shape shape, double mu) {
  RandomInstanceConfig config;
  config.item_count = 500;
  config.duration.max_length = mu;
  switch (shape) {
    case Shape::kSteady:
      config.arrival.rate = 6.0;
      config.size.min_fraction = 0.05;
      config.size.max_fraction = 0.6;
      break;
    case Shape::kBursty:
      config.arrival.kind = ArrivalModel::Kind::kBursts;
      config.arrival.burst_size = 12;
      config.arrival.burst_gap = 1.0;
      config.size.min_fraction = 0.1;
      config.size.max_fraction = 0.5;
      break;
    case Shape::kChurny:
      config.arrival.rate = 25.0;  // heavy churn: many bins open and close
      config.size.min_fraction = 0.15;
      config.size.max_fraction = 0.9;
      break;
    case Shape::kSmallItems:
      config.arrival.rate = 30.0;
      config.size.min_fraction = 0.01;
      config.size.max_fraction = 0.19;  // < W/5
      break;
  }
  return config;
}

using Cell = std::tuple<Shape, double, std::uint64_t>;

class DecompositionPropertyTest : public ::testing::TestWithParam<Cell> {};

TEST_P(DecompositionPropertyTest, ProofInvariantsHoldOnFirstFitTraces) {
  const auto [shape, mu, seed] = GetParam();
  const Instance instance = generate_random_instance(make_config(shape, mu), seed);
  const SimulationResult result = simulate(instance, "first-fit", unit_model());
  const FFDecomposition decomposition = decompose_first_fit(instance, result);

  const std::optional<double> small_item_k =
      shape == Shape::kSmallItems ? std::optional<double>(5.0) : std::nullopt;
  const DecompositionReport report = verify_ff_decomposition(
      instance, result, decomposition, unit_model(), small_item_k);

  EXPECT_TRUE(report.features_ok);
  EXPECT_TRUE(report.lemma1_ok);
  EXPECT_TRUE(report.lemma2_ok);
  EXPECT_TRUE(report.lemma3_ok);
  EXPECT_TRUE(report.lemma4_ok);
  EXPECT_TRUE(report.lemma5_ok);
  EXPECT_TRUE(report.demand_ok);
  EXPECT_TRUE(report.cost_bound_ok);
  if (!report.violations.empty()) {
    ADD_FAILURE() << report.violations.size()
                  << " violations; first: " << report.violations.front();
  }

  // Structural identities.
  EXPECT_NEAR(decomposition.ff_total,
              decomposition.sum_left_lengths + decomposition.span,
              1e-9 * decomposition.ff_total);
  EXPECT_NEAR(decomposition.span, span_of(instance), 1e-9);
  EXPECT_EQ(decomposition.joint_period_count * 2 +
                decomposition.single_period_count +
                decomposition.non_intersecting_count,
            decomposition.sub_periods.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionPropertyTest,
    ::testing::Combine(::testing::Values(Shape::kSteady, Shape::kBursty,
                                         Shape::kChurny, Shape::kSmallItems),
                       ::testing::Values(1.0, 3.0, 8.0),
                       ::testing::Values(5u, 55u, 555u)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return shape_name(std::get<0>(info.param)) + "_mu" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

TEST(DecompositionSpecialTracesTest, AnyFitAdversaryTrace) {
  const auto built = build_anyfit_adversary({.k = 6, .mu = 4.0});
  const SimulationResult result =
      simulate(built.instance, "first-fit", unit_model());
  const FFDecomposition d = decompose_first_fit(built.instance, result);
  const DecompositionReport report =
      verify_ff_decomposition(built.instance, result, d, unit_model());
  EXPECT_TRUE(report.all_ok()) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
}

TEST(DecompositionSpecialTracesTest, CloudGamingTrace) {
  CloudGamingConfig config;
  config.horizon_hours = 8.0;
  config.peak_arrivals_per_minute = 1.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 13);
  const SimulationResult result =
      simulate(trace.instance, "first-fit", unit_model());
  const FFDecomposition d = decompose_first_fit(trace.instance, result);
  const DecompositionReport report =
      verify_ff_decomposition(trace.instance, result, d, unit_model());
  EXPECT_TRUE(report.all_ok()) << (report.violations.empty()
                                       ? ""
                                       : report.violations.front());
}

}  // namespace
}  // namespace dbp
