// Wire-vs-direct differential (ISSUE 10 acceptance): the same event stream
// fed through the Unix-socket front-end — in both framings — must leave
// the engine bit-identical to direct submit()/advance_epoch() calls:
// streaming OPT bounds, bill, fault statistics, session counts, and the
// exported trace (timings suppressed) all compare exactly.
//
// Workloads mirror tools/dbp_client --workload (uniform / dyadic sizes /
// bursty arrivals), and each stream gets a deterministic tail of anomalous
// events (duplicate start, unknown end, invalid size, time-order
// violation) so the drop-and-count fault path crosses the wire too — the
// wire layer must pass semantically invalid events through untouched for
// the dispatcher to count, never filter them itself.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"
#include "obs/obs.hpp"
#include "sim/event.hpp"
#include "workload/random_instance.hpp"

namespace dbp::net {
namespace {

constexpr std::size_t kEventsPerWorkload = 400;
/// Epoch cadence in events over the sorted base stream.
constexpr std::size_t kEpochEvery = 64;

struct RunResult {
  engine::StreamingOptBounds opt{};
  double bill = 0.0;
  DispatcherFaultStats faults{};
  std::size_t active_sessions = 0;
  std::size_t active_servers = 0;
  std::uint64_t events_applied = 0;
  std::string trace;
};

engine::EngineConfig engine_config() {
  engine::EngineConfig config;
  config.shard_count = 2;
  config.spec = ServerSpec{1.0, 6.0};
  return config;
}

/// Same generator mapping as tools/dbp_client make_stream.
std::vector<engine::SessionEvent> base_stream(const std::string& workload) {
  RandomInstanceConfig config;
  config.item_count = kEventsPerWorkload / 2;
  config.arrival.rate = 50.0;
  config.duration.max_length = 6.0;
  config.size.min_fraction = 0.05;
  config.size.max_fraction = 0.5;
  if (workload == "dyadic") {
    config.size.kind = SizeModel::Kind::kDyadic;
  } else if (workload == "bursts") {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 16;
    config.arrival.burst_gap = 0.5;
  }
  const Instance instance = generate_random_instance(config, 17);
  std::vector<engine::SessionEvent> stream;
  stream.reserve(2 * instance.size());
  for (const Event& event : build_event_sequence(instance)) {
    if (event.kind == EventKind::kArrival) {
      stream.push_back(engine::start_event(
          event.item, instance.item(event.item).size, event.time));
    } else {
      stream.push_back(engine::end_event(event.item, event.time));
    }
  }
  return stream;
}

/// Appends one event of every anomaly class the dispatcher drops and
/// counts. The tail is identical for both runs, so the fault statistics
/// must merge identically.
std::vector<engine::SessionEvent> with_fault_tail(
    std::vector<engine::SessionEvent> stream) {
  const double last = stream.empty() ? 0.0 : stream.back().time_minutes;
  stream.push_back(engine::start_event(900001, 0.3, last));
  stream.push_back(engine::start_event(900001, 0.3, last));  // duplicate start
  stream.push_back(engine::end_event(900002, last));         // unknown end
  stream.push_back(engine::start_event(900003, -0.25, last));  // invalid size
  stream.push_back(engine::start_event(900004, 0.2, 0.0));  // time regression
  return stream;
}

double final_epoch_time(const std::vector<engine::SessionEvent>& stream) {
  double horizon = 0.0;
  for (const engine::SessionEvent& event : stream) {
    horizon = std::max(horizon, event.time_minutes);
  }
  return horizon;
}

RunResult collect(engine::ShardedDispatchEngine& eng, double horizon,
                  const obs::RunTracer& tracer) {
  RunResult result;
  result.opt = eng.opt_bounds();
  result.bill = eng.rental_cost_dollars(horizon);
  result.faults = eng.merged_fault_stats();
  result.active_sessions = eng.active_sessions();
  result.active_servers = eng.active_servers();
  result.events_applied = eng.events_applied();
  std::ostringstream jsonl;
  tracer.export_jsonl(jsonl, /*include_timings=*/false);
  result.trace = jsonl.str();
  return result;
}

/// The reference: single-threaded direct submission with the same epoch
/// schedule the wire run uses.
RunResult run_direct(const std::vector<engine::SessionEvent>& stream,
                     std::size_t base_size) {
  obs::RunTracer tracer;
  obs::MetricsRegistry metrics;
  obs::ObsScope scope(&tracer, &metrics);
  engine::ShardedDispatchEngine eng(engine_config());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    eng.submit(stream[i]);
    if (i < base_size && (i + 1) % kEpochEvery == 0) {
      eng.advance_epoch(stream[i].time_minutes);
    }
  }
  const double horizon = final_epoch_time(stream);
  eng.advance_epoch(horizon);
  eng.drain();  // mirror the wire run's query-time drain (a no-op here)
  return collect(eng, horizon, tracer);
}

RunResult run_wire(const std::vector<engine::SessionEvent>& stream,
                   std::size_t base_size, WireClient::Framing framing,
                   const std::string& socket_path) {
  obs::RunTracer tracer;
  obs::MetricsRegistry metrics;
  engine::ShardedDispatchEngine eng(engine_config());
  WireServerConfig config;
  config.socket_path = socket_path;
  WireServer server(eng, config, &tracer, &metrics);
  server.start();
  const double horizon = final_epoch_time(stream);
  {
    WireClient client(socket_path, framing);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      client.submit(stream[i]);
      if (i < base_size && (i + 1) % kEpochEvery == 0) {
        client.epoch(stream[i].time_minutes);
      }
    }
    client.epoch(horizon);
    const WireResponse answer = client.query(horizon);
    EXPECT_EQ(answer.error, WireError::kNone) << answer.detail;
    EXPECT_TRUE(client.async_errors().empty());
  }
  server.stop();
  EXPECT_EQ(server.stats().events_submitted, stream.size());
  return collect(eng, horizon, tracer);
}

void expect_bit_identical(const RunResult& direct, const RunResult& wire) {
  EXPECT_EQ(direct.opt.lower_dollars, wire.opt.lower_dollars);
  EXPECT_EQ(direct.opt.upper_dollars, wire.opt.upper_dollars);
  EXPECT_EQ(direct.opt.segments, wire.opt.segments);
  EXPECT_EQ(direct.opt.exact_segments, wire.opt.exact_segments);
  EXPECT_EQ(direct.bill, wire.bill);
  EXPECT_EQ(direct.faults, wire.faults);
  EXPECT_EQ(direct.active_sessions, wire.active_sessions);
  EXPECT_EQ(direct.active_servers, wire.active_servers);
  EXPECT_EQ(direct.events_applied, wire.events_applied);
  EXPECT_EQ(direct.trace, wire.trace);
}

class NetDifferentialTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            (std::string("dbp_net_differential_test.") + GetParam()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_P(NetDifferentialTest, WireFedRunIsBitIdenticalToDirectSubmission) {
  const std::vector<engine::SessionEvent> base = base_stream(GetParam());
  const std::size_t base_size = base.size();
  const std::vector<engine::SessionEvent> stream = with_fault_tail(base);

  const RunResult direct = run_direct(stream, base_size);
  // The injected tail must actually exercise every anomaly counter — a
  // wire layer that silently filtered invalid events would zero these.
  EXPECT_GE(direct.faults.duplicate_starts, 1u);
  EXPECT_GE(direct.faults.unknown_ends, 1u);
  EXPECT_GE(direct.faults.invalid_sizes, 1u);
  EXPECT_GE(direct.faults.time_order_violations, 1u);
  EXPECT_GT(direct.opt.segments, 0u);
  EXPECT_GT(direct.bill, 0.0);
  EXPECT_FALSE(direct.trace.empty());

  const RunResult binary = run_wire(stream, base_size,
                                    WireClient::Framing::kBinary,
                                    dir_ + "/binary.sock");
  expect_bit_identical(direct, binary);

  const RunResult json = run_wire(stream, base_size,
                                  WireClient::Framing::kJson,
                                  dir_ + "/json.sock");
  expect_bit_identical(direct, json);
}

INSTANTIATE_TEST_SUITE_P(Workloads, NetDifferentialTest,
                         ::testing::Values("uniform", "dyadic", "bursts"));

}  // namespace
}  // namespace dbp::net
