// Wire-protocol codec tests (ISSUE 10): binary frame round trips, the
// strict flat-JSON subset, typed rejection codes for every structural
// corruption, and the strict-parser reuse that makes a wire field reject
// "8abc" or "-1" exactly like a CLI flag (tools/cli.hpp shares
// core/parse.hpp with decode_json_request).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/binary_io.hpp"
#include "core/crc32.hpp"
#include "core/error.hpp"
#include "net/wire_protocol.hpp"

namespace dbp::net {
namespace {

std::vector<WireRequest> all_requests() {
  std::vector<WireRequest> requests;
  WireRequest start;
  start.verb = WireVerb::kSubmit;
  start.event = engine::start_event(42, 0.1, 1.0 / 3.0);
  requests.push_back(start);

  WireRequest routed = start;
  routed.event.route_key = 7;  // route decoupled from the session id
  requests.push_back(routed);

  WireRequest end;
  end.verb = WireVerb::kSubmit;
  end.event = engine::end_event(42, 6.62607015e-3);
  requests.push_back(end);

  WireRequest epoch;
  epoch.verb = WireVerb::kEpoch;
  epoch.time_minutes = 0.1;  // not exactly representable; must round trip
  requests.push_back(epoch);

  WireRequest query;
  query.verb = WireVerb::kQuery;
  query.time_minutes = 1e300;
  requests.push_back(query);

  WireRequest shutdown;
  shutdown.verb = WireVerb::kShutdown;
  requests.push_back(shutdown);
  return requests;
}

void expect_same_request(const WireRequest& expected, const WireRequest& got) {
  EXPECT_EQ(expected.verb, got.verb);
  EXPECT_EQ(expected.time_minutes, got.time_minutes);
  if (expected.verb == WireVerb::kSubmit) {
    EXPECT_EQ(expected.event.kind, got.event.kind);
    EXPECT_EQ(expected.event.session_id, got.event.session_id);
    EXPECT_EQ(expected.event.route_key, got.event.route_key);
    EXPECT_EQ(expected.event.time_minutes, got.event.time_minutes);
    if (expected.event.kind == engine::SessionEvent::Kind::kStart) {
      EXPECT_EQ(expected.event.gpu_fraction, got.event.gpu_fraction);
    }
  }
}

/// Splits a full frame into header + CRC-verified payload the way the
/// server's read loop does.
DecodeResult decode_full_frame(std::span<const std::uint8_t> frame) {
  FrameHeader header;
  const WireError header_error =
      decode_frame_header(frame.subspan(0, kFrameHeaderBytes), header);
  EXPECT_EQ(header_error, WireError::kNone);
  std::span<const std::uint8_t> payload =
      frame.subspan(kFrameHeaderBytes, header.payload_len);
  EXPECT_EQ(crc32(payload), header.payload_crc);
  return decode_request(payload);
}

TEST(NetWireBinary, RequestFramesRoundTripBitExact) {
  for (const WireRequest& request : all_requests()) {
    const std::vector<std::uint8_t> frame = encode_request_frame(request);
    ASSERT_GE(frame.size(), kFrameHeaderBytes);
    const DecodeResult decoded = decode_full_frame(frame);
    ASSERT_EQ(decoded.error, WireError::kNone) << decoded.detail;
    expect_same_request(request, decoded.request);
  }
}

TEST(NetWireBinary, ResponseFramesRoundTrip) {
  WireResponse response;
  response.request_seq = 917;
  response.error = WireError::kBadField;
  response.detail = "invalid session id '8abc'";
  response.body = "{\"ok\":false}";
  const std::vector<std::uint8_t> frame = encode_response_frame(response);
  FrameHeader header;
  ASSERT_EQ(decode_frame_header(
                std::span(frame).subspan(0, kFrameHeaderBytes), header),
            WireError::kNone);
  const WireResponse decoded = decode_response(
      std::span(frame).subspan(kFrameHeaderBytes, header.payload_len));
  EXPECT_EQ(decoded.request_seq, response.request_seq);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.detail, response.detail);
  EXPECT_EQ(decoded.body, response.body);
}

TEST(NetWireBinary, HeaderRejectsBadMagic) {
  std::vector<std::uint8_t> frame =
      encode_request_frame(WireRequest{WireVerb::kQuery, {}, 0.0});
  frame[0] ^= 0xFF;
  FrameHeader header;
  EXPECT_EQ(decode_frame_header(
                std::span(frame).subspan(0, kFrameHeaderBytes), header),
            WireError::kBadMagic);
}

TEST(NetWireBinary, HeaderRejectsOversizedLength) {
  ByteWriter writer;
  writer.u32(kWireMagic);
  writer.u32(kMaxFramePayloadBytes + 1);
  writer.u32(0);
  FrameHeader header;
  EXPECT_EQ(decode_frame_header(std::span(writer.data()), header),
            WireError::kOversizedFrame);
}

TEST(NetWireBinary, HeaderRejectsShortSpan) {
  const std::vector<std::uint8_t> stub = {0x44, 0x42};
  FrameHeader header;
  EXPECT_EQ(decode_frame_header(std::span(stub), header),
            WireError::kTruncatedFrame);
}

TEST(NetWireBinary, PayloadRejectionsAreTyped) {
  {
    // Empty payload: no verb byte to read.
    const DecodeResult decoded = decode_request({});
    EXPECT_EQ(decoded.error, WireError::kBadPayload);
  }
  {
    // Verb byte outside the vocabulary.
    const std::vector<std::uint8_t> payload = {0x63};
    const DecodeResult decoded = decode_request(std::span(payload));
    EXPECT_EQ(decoded.error, WireError::kUnknownVerb);
    EXPECT_NE(decoded.detail.find("99"), std::string::npos)
        << decoded.detail;
  }
  {
    // Valid submit frame with a kind byte that is neither start nor end.
    std::vector<std::uint8_t> payload =
        encode_request(WireRequest{WireVerb::kSubmit,
                                   engine::start_event(1, 0.5, 1.0), 0.0});
    payload[1] = 9;
    const DecodeResult decoded = decode_request(std::span(payload));
    EXPECT_EQ(decoded.error, WireError::kBadField);
  }
  {
    // Trailing garbage after a complete request: expect_done fires.
    std::vector<std::uint8_t> payload =
        encode_request(WireRequest{WireVerb::kShutdown, {}, 0.0});
    payload.push_back(0xAB);
    const DecodeResult decoded = decode_request(std::span(payload));
    EXPECT_EQ(decoded.error, WireError::kBadPayload);
  }
  {
    // Truncated mid-field: the reader underruns.
    std::vector<std::uint8_t> payload = encode_request(WireRequest{
        WireVerb::kSubmit, engine::start_event(1, 0.5, 1.0), 0.0});
    payload.resize(payload.size() / 2);
    const DecodeResult decoded = decode_request(std::span(payload));
    EXPECT_EQ(decoded.error, WireError::kBadPayload);
  }
}

TEST(NetWireErrors, FatalityClassifiesStreamDesyncOnly) {
  EXPECT_TRUE(fatal(WireError::kBadMagic));
  EXPECT_TRUE(fatal(WireError::kOversizedFrame));
  EXPECT_TRUE(fatal(WireError::kBadCrc));
  EXPECT_TRUE(fatal(WireError::kTruncatedFrame));
  EXPECT_TRUE(fatal(WireError::kOversizedLine));
  EXPECT_FALSE(fatal(WireError::kNone));
  EXPECT_FALSE(fatal(WireError::kBadPayload));
  EXPECT_FALSE(fatal(WireError::kUnknownVerb));
  EXPECT_FALSE(fatal(WireError::kBadField));
  EXPECT_FALSE(fatal(WireError::kBadJson));
  EXPECT_FALSE(fatal(WireError::kNotUtf8));
}

TEST(NetWireErrors, NamesAreStableWireVocabulary) {
  EXPECT_STREQ(to_string(WireError::kNone), "ok");
  EXPECT_STREQ(to_string(WireError::kBadMagic), "bad_magic");
  EXPECT_STREQ(to_string(WireError::kBadCrc), "bad_crc");
  EXPECT_STREQ(to_string(WireError::kTruncatedFrame), "truncated_frame");
  EXPECT_STREQ(to_string(WireError::kUnknownVerb), "unknown_verb");
  EXPECT_STREQ(to_string(WireError::kBadField), "bad_field");
  EXPECT_STREQ(to_string(WireError::kNotUtf8), "not_utf8");
  EXPECT_STREQ(to_string(WireError::kOversizedLine), "oversized_line");
}

TEST(NetWireJson, RequestsRoundTripBitExact) {
  for (const WireRequest& request : all_requests()) {
    const std::string line = encode_json_request(request);
    const DecodeResult decoded = decode_json_request(line);
    ASSERT_EQ(decoded.error, WireError::kNone)
        << line << " -> " << decoded.detail;
    expect_same_request(request, decoded.request);
  }
}

TEST(NetWireJson, RouteDefaultsToSessionId) {
  const DecodeResult decoded = decode_json_request(
      R"({"verb":"submit","kind":"start","id":11,"size":0.25,"t":2.0})");
  ASSERT_EQ(decoded.error, WireError::kNone) << decoded.detail;
  EXPECT_EQ(decoded.request.event.route_key, 11u);
}

TEST(NetWireJson, StructuralRejectionsAreTyped) {
  const struct {
    const char* line;
    WireError expected;
  } kCases[] = {
      {"not json at all", WireError::kBadJson},
      {"[1,2,3]", WireError::kBadJson},
      {R"({"verb":"query","t":{"nested":1}})", WireError::kBadJson},
      {R"({"verb":"query","t":[1]})", WireError::kBadJson},
      {R"({"verb":"query","t":1,"t":2})", WireError::kBadJson},
      {R"({"verb":"query","t":1)", WireError::kBadJson},
      {R"({"verb":"frobnicate"})", WireError::kUnknownVerb},
      {R"({"kind":"start","id":1,"size":0.5,"t":1})", WireError::kBadField},
      {R"({"verb":"epoch"})", WireError::kBadField},
      {R"({"verb":"epoch","t":true})", WireError::kBadField},
      {R"({"verb":"epoch","t":"later"})", WireError::kBadField},
      {R"({"verb":"shutdown","bogus":1})", WireError::kBadField},
      {R"({"verb":"submit","kind":"sideways","id":1,"size":0.5,"t":1})",
       WireError::kBadField},
      {R"({"verb":"submit","kind":"end","id":1,"size":0.5,"t":1})",
       WireError::kBadField},  // size is a start-only field
      {R"({"verb":"submit","kind":"start","id":1,"t":1})",
       WireError::kBadField},  // ... and required on start
  };
  for (const auto& test_case : kCases) {
    const DecodeResult decoded = decode_json_request(test_case.line);
    EXPECT_EQ(decoded.error, test_case.expected)
        << test_case.line << " -> " << decoded.detail;
    EXPECT_FALSE(decoded.detail.empty()) << test_case.line;
  }
}

TEST(NetWireJson, NumericFieldsUseTheStrictCliParsers) {
  // The exact malformed numbers the CLI satellite pins down (cli_parse_test)
  // must be rejected on the wire too, with the shared parser's message.
  const struct {
    const char* line;
    const char* expected_fragment;
  } kCases[] = {
      {R"({"verb":"submit","kind":"start","id":8abc,"size":0.5,"t":1})",
       "'8abc'"},
      {R"({"verb":"submit","kind":"start","id":-1,"size":0.5,"t":1})",
       "non-negative integer"},
      {R"({"verb":"epoch","t":1.5x})", "'1.5x'"},
      {R"({"verb":"epoch","t":nan})", "finite"},
      {R"({"verb":"epoch","t":1e99999})", "range"},
  };
  for (const auto& test_case : kCases) {
    const DecodeResult decoded = decode_json_request(test_case.line);
    EXPECT_EQ(decoded.error, WireError::kBadField) << test_case.line;
    EXPECT_NE(decoded.detail.find(test_case.expected_fragment),
              std::string::npos)
        << test_case.line << " -> " << decoded.detail;
  }
}

TEST(NetWireJson, NonUtf8LinesAreRejectedBeforeParsing) {
  std::string line = R"({"verb":"query","t":)";
  line.push_back(static_cast<char>(0xFF));
  line.push_back(static_cast<char>(0xFE));
  line.push_back('}');
  const DecodeResult decoded = decode_json_request(line);
  EXPECT_EQ(decoded.error, WireError::kNotUtf8);
}

TEST(NetWireJson, Utf8ValidatorIsStrict) {
  EXPECT_TRUE(is_valid_utf8("plain ascii"));
  EXPECT_TRUE(is_valid_utf8("caf\xC3\xA9"));            // U+00E9
  EXPECT_TRUE(is_valid_utf8("\xE2\x82\xAC"));           // U+20AC
  EXPECT_TRUE(is_valid_utf8("\xF0\x9F\x8E\xAE"));       // U+1F3AE
  EXPECT_FALSE(is_valid_utf8("\xC0\x80"));              // overlong NUL
  EXPECT_FALSE(is_valid_utf8("\xE0\x80\xAF"));          // overlong
  EXPECT_FALSE(is_valid_utf8("\xED\xA0\x80"));          // surrogate
  EXPECT_FALSE(is_valid_utf8("\xF4\x90\x80\x80"));      // > U+10FFFF
  EXPECT_FALSE(is_valid_utf8("\x80"));                  // bare continuation
  EXPECT_FALSE(is_valid_utf8("\xC3"));                  // truncated lead
  EXPECT_FALSE(is_valid_utf8("\xE2\x82"));              // truncated 3-byte
}

TEST(NetWireJson, ResponsesRoundTripIncludingEscapes) {
  WireResponse response;
  response.request_seq = 3;
  response.error = WireError::kBadField;
  response.detail = "path \"a\\b\"\nline2\ttab\x01";
  const std::string line = encode_json_response(response);
  EXPECT_TRUE(is_valid_utf8(line));
  const WireResponse decoded = decode_json_response(line);
  EXPECT_EQ(decoded.request_seq, response.request_seq);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.detail, response.detail);

  WireResponse ok;
  ok.request_seq = 4;
  ok.body = "{\"active_sessions\": 2}";
  const WireResponse ok_decoded = decode_json_response(encode_json_response(ok));
  EXPECT_EQ(ok_decoded.error, WireError::kNone);
  EXPECT_EQ(ok_decoded.request_seq, 4u);
  EXPECT_EQ(ok_decoded.body, ok.body);
}

TEST(NetWireJson, ResponseDecoderThrowsOnDamage) {
  EXPECT_THROW((void)decode_json_response("{\"seq\":}"), CorruptionError);
  EXPECT_THROW((void)decode_json_response("totally not a response"),
               CorruptionError);
}

}  // namespace
}  // namespace dbp::net
