// Property tests: the paper's cost bounds hold on every run.
//
// For every (workload profile x mu x seed) cell and every algorithm:
//   * (b.1) A_total >= u(R) * C / W, (b.2) A_total >= span(R) * C,
//     (b.3) A_total <= sum len(I(r)) * C;
//   * A_total >= OPT_total lower bound;
//   * Theorem 5:  FF_total <= (2*mu + 13) * OPT_total;
//   * Theorem 4:  small items (< W/k): FF <= (k/(k-1)*mu + 6k/(k-1) + 1)*OPT;
//   * Theorem 3:  large items (>= W/k): FF <= k * OPT;
//   * Section 4.4: MFF <= (8/7*mu + 55/7) * OPT (k = 8), and
//                  MFF-known-mu <= (mu + 8) * OPT.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "analysis/ratio.hpp"
#include "core/metrics.hpp"
#include "workload/random_instance.hpp"

namespace dbp {
namespace {

CostModel unit_model() { return CostModel{1.0, 1.0, 1e-9}; }

enum class Profile { kMixed, kSmall, kLarge, kDyadic, kBursty };

std::string profile_name(Profile profile) {
  switch (profile) {
    case Profile::kMixed: return "mixed";
    case Profile::kSmall: return "small";
    case Profile::kLarge: return "large";
    case Profile::kDyadic: return "dyadic";
    case Profile::kBursty: return "bursty";
  }
  return "?";
}

RandomInstanceConfig make_config(Profile profile, double mu) {
  RandomInstanceConfig config;
  config.item_count = 400;
  config.arrival.rate = 8.0;
  config.duration.min_length = 1.0;
  config.duration.max_length = mu;
  switch (profile) {
    case Profile::kMixed:
      config.size.min_fraction = 0.02;
      config.size.max_fraction = 0.9;
      break;
    case Profile::kSmall:  // strictly below W/k for k = 4
      config.size.min_fraction = 0.01;
      config.size.max_fraction = 0.24;
      break;
    case Profile::kLarge:  // at or above W/k for k = 4
      config.size.min_fraction = 0.25;
      config.size.max_fraction = 0.95;
      break;
    case Profile::kDyadic:
      config.size.kind = SizeModel::Kind::kDyadic;
      config.size.min_exponent = 1;
      config.size.max_exponent = 5;
      break;
    case Profile::kBursty:
      config.arrival.kind = ArrivalModel::Kind::kBursts;
      config.arrival.burst_size = 16;
      config.arrival.burst_gap = 1.5;
      config.size.min_fraction = 0.05;
      config.size.max_fraction = 0.5;
      break;
  }
  return config;
}

using Cell = std::tuple<Profile, double, std::uint64_t>;  // profile, mu, seed

class BoundsPropertyTest : public ::testing::TestWithParam<Cell> {};

TEST_P(BoundsPropertyTest, PaperBoundsHoldForEveryAlgorithm) {
  const auto [profile, mu, seed] = GetParam();
  const RandomInstanceConfig config = make_config(profile, mu);
  const Instance instance = generate_random_instance(config, seed);
  const CostModel model = unit_model();
  const CostBounds closed_form = compute_cost_bounds(instance, model);
  const InstanceMetrics metrics = compute_metrics(instance);

  EvaluateOptions options;
  options.opt.bin_count.exact.node_budget = 20'000;
  const InstanceEvaluation evaluation =
      evaluate_algorithms(instance, all_algorithm_names(), model, options);

  for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
    SCOPED_TRACE(eval.algorithm);
    const double cost = eval.total_cost;
    // (b.1)-(b.3).
    EXPECT_GE(cost, closed_form.demand_lower * (1.0 - 1e-9));
    EXPECT_GE(cost, closed_form.span_lower * (1.0 - 1e-9));
    EXPECT_LE(cost, closed_form.one_per_item_upper * (1.0 + 1e-9));
    // Never cheaper than OPT.
    EXPECT_GE(cost, evaluation.opt.lower_cost * (1.0 - 1e-9));
    // Ratio interval is sane.
    EXPECT_LE(eval.ratio.lower, eval.ratio.upper + 1e-12);
  }

  const double m = metrics.mu;
  // Theorem 5 (general FF) against the certified OPT upper bound.
  EXPECT_LE(evaluation.row("first-fit").total_cost,
            (2.0 * m + 13.0) * evaluation.opt.upper_cost * (1.0 + 1e-9));
  // Section 4.4 (MFF with k = 8, mu unknown).
  EXPECT_LE(evaluation.row("modified-first-fit").total_cost,
            (8.0 / 7.0 * m + 55.0 / 7.0) * evaluation.opt.upper_cost * (1.0 + 1e-9));
  // Section 4.4 (MFF with known mu; k = mu + 7).
  EXPECT_LE(evaluation.row("modified-first-fit-known-mu").total_cost,
            (m + 8.0) * evaluation.opt.upper_cost * (1.0 + 1e-9));

  if (profile == Profile::kSmall) {
    // Theorem 4 with k = 4: all sizes < W/4.
    ASSERT_LT(metrics.max_size, 0.25);
    const double k = 4.0;
    const double bound = k / (k - 1.0) * m + 6.0 * k / (k - 1.0) + 1.0;
    EXPECT_LE(evaluation.row("first-fit").total_cost,
              bound * evaluation.opt.upper_cost * (1.0 + 1e-9));
  }
  if (profile == Profile::kLarge) {
    // Theorem 3 with k = 4: all sizes >= W/4.
    ASSERT_GE(metrics.min_size, 0.25);
    EXPECT_LE(evaluation.row("first-fit").total_cost,
              4.0 * evaluation.opt.upper_cost * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsPropertyTest,
    ::testing::Combine(::testing::Values(Profile::kMixed, Profile::kSmall,
                                         Profile::kLarge, Profile::kDyadic,
                                         Profile::kBursty),
                       ::testing::Values(1.0, 4.0, 16.0),
                       ::testing::Values(101u, 202u, 303u)),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return profile_name(std::get<0>(info.param)) + "_mu" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace dbp
